//! The 13 SSB queries as declarative star-query descriptors.
//!
//! Both engines consume the same [`StarQuery`] description: Clydesdale
//! compiles it into a single n-way-join MapReduce job (paper Section 4.2),
//! the Hive baseline into a multi-stage plan with one two-way join per stage
//! (Section 6.1). The reference executor interprets it directly.

use crate::schema;
use clyde_columnar::SortedDict;
use clyde_common::{ClydeError, FxHashMap, Result, Row, Schema};
use std::sync::Arc;

/// A predicate over fact-table columns (flight 1's discount/quantity
/// filters).
#[derive(Debug, Clone, PartialEq)]
pub enum FactPred {
    /// `lo <= column <= hi`
    I32Between { column: String, lo: i32, hi: i32 },
    /// `column < value`
    I32Lt { column: String, value: i32 },
}

impl FactPred {
    pub fn column(&self) -> &str {
        match self {
            FactPred::I32Between { column, .. } | FactPred::I32Lt { column, .. } => column,
        }
    }

    /// Compile against a scan schema for block-wise evaluation.
    pub fn compile(&self, scan_schema: &Schema) -> Result<CompiledFactPred> {
        Ok(match self {
            FactPred::I32Between { column, lo, hi } => CompiledFactPred::Between {
                col: scan_schema.index_of(column)?,
                lo: *lo,
                hi: *hi,
            },
            FactPred::I32Lt { column, value } => CompiledFactPred::Lt {
                col: scan_schema.index_of(column)?,
                value: *value,
            },
        })
    }
}

/// Index-resolved fact predicate.
#[derive(Debug, Clone, Copy)]
pub enum CompiledFactPred {
    Between { col: usize, lo: i32, hi: i32 },
    Lt { col: usize, value: i32 },
}

impl CompiledFactPred {
    /// Evaluate against column slices of a block at row `i`.
    #[inline]
    pub fn eval_i32(&self, columns: &[&[i32]], i: usize) -> bool {
        match *self {
            CompiledFactPred::Between { col, lo, hi } => {
                let v = columns[col][i];
                v >= lo && v <= hi
            }
            CompiledFactPred::Lt { col, value } => columns[col][i] < value,
        }
    }

    pub fn col(&self) -> usize {
        match *self {
            CompiledFactPred::Between { col, .. } | CompiledFactPred::Lt { col, .. } => col,
        }
    }
}

/// A predicate over dimension-table columns.
#[derive(Debug, Clone, PartialEq)]
pub enum DimPred {
    /// Always true (dimension joined only for its auxiliary columns).
    True,
    StrEq {
        column: String,
        value: String,
    },
    StrIn {
        column: String,
        values: Vec<String>,
    },
    StrBetween {
        column: String,
        lo: String,
        hi: String,
    },
    I32Eq {
        column: String,
        value: i32,
    },
    I32Between {
        column: String,
        lo: i32,
        hi: i32,
    },
    I32In {
        column: String,
        values: Vec<i32>,
    },
    And(Vec<DimPred>),
}

impl DimPred {
    /// Collect the dimension columns the predicate reads (deduplicated).
    /// Baselines that project dimension scans need these in addition to the
    /// key and auxiliary columns.
    pub fn columns(&self, out: &mut Vec<String>) {
        let mut push = |c: &str| {
            if !out.iter().any(|x| x == c) {
                out.push(c.to_string());
            }
        };
        match self {
            DimPred::True => {}
            DimPred::StrEq { column, .. }
            | DimPred::StrIn { column, .. }
            | DimPred::StrBetween { column, .. }
            | DimPred::I32Eq { column, .. }
            | DimPred::I32Between { column, .. }
            | DimPred::I32In { column, .. } => push(column),
            DimPred::And(preds) => {
                for p in preds {
                    p.columns(out);
                }
            }
        }
    }

    /// Resolve column names to indices for fast row evaluation.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledDimPred> {
        Ok(match self {
            DimPred::True => CompiledDimPred::True,
            DimPred::StrEq { column, value } => CompiledDimPred::StrEq {
                col: schema.index_of(column)?,
                value: Arc::from(value.as_str()),
            },
            DimPred::StrIn { column, values } => CompiledDimPred::StrIn {
                col: schema.index_of(column)?,
                values: values.iter().map(|v| Arc::from(v.as_str())).collect(),
            },
            DimPred::StrBetween { column, lo, hi } => CompiledDimPred::StrBetween {
                col: schema.index_of(column)?,
                lo: lo.clone(),
                hi: hi.clone(),
            },
            DimPred::I32Eq { column, value } => CompiledDimPred::I32Eq {
                col: schema.index_of(column)?,
                value: *value,
            },
            DimPred::I32Between { column, lo, hi } => CompiledDimPred::I32Between {
                col: schema.index_of(column)?,
                lo: *lo,
                hi: *hi,
            },
            DimPred::I32In { column, values } => CompiledDimPred::I32In {
                col: schema.index_of(column)?,
                values: values.clone(),
            },
            DimPred::And(preds) => CompiledDimPred::And(
                preds
                    .iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
        })
    }
}

/// Index-resolved dimension predicate.
#[derive(Debug, Clone)]
pub enum CompiledDimPred {
    True,
    StrEq { col: usize, value: Arc<str> },
    StrIn { col: usize, values: Vec<Arc<str>> },
    StrBetween { col: usize, lo: String, hi: String },
    I32Eq { col: usize, value: i32 },
    I32Between { col: usize, lo: i32, hi: i32 },
    I32In { col: usize, values: Vec<i32> },
    And(Vec<CompiledDimPred>),
}

impl CompiledDimPred {
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            CompiledDimPred::True => true,
            CompiledDimPred::StrEq { col, value } => row.at(*col).as_str() == Some(value.as_ref()),
            CompiledDimPred::StrIn { col, values } => match row.at(*col).as_str() {
                Some(s) => values.iter().any(|v| v.as_ref() == s),
                None => false,
            },
            CompiledDimPred::StrBetween { col, lo, hi } => match row.at(*col).as_str() {
                Some(s) => s >= lo.as_str() && s <= hi.as_str(),
                None => false,
            },
            CompiledDimPred::I32Eq { col, value } => {
                row.at(*col).as_i64() == Some(i64::from(*value))
            }
            CompiledDimPred::I32Between { col, lo, hi } => match row.at(*col).as_i64() {
                Some(v) => v >= i64::from(*lo) && v <= i64::from(*hi),
                None => false,
            },
            CompiledDimPred::I32In { col, values } => match row.at(*col).as_i64() {
                Some(v) => values.iter().any(|&x| i64::from(x) == v),
                None => false,
            },
            CompiledDimPred::And(preds) => preds.iter().all(|p| p.eval(row)),
        }
    }

    /// Schema indices of the string columns the predicate compares
    /// (deduplicated) — the columns a dictionary-predicate build must
    /// encode.
    pub fn str_cols(&self, out: &mut Vec<usize>) {
        match self {
            CompiledDimPred::StrEq { col, .. }
            | CompiledDimPred::StrIn { col, .. }
            | CompiledDimPred::StrBetween { col, .. } => {
                if !out.contains(col) {
                    out.push(*col);
                }
            }
            CompiledDimPred::And(preds) => {
                for p in preds {
                    p.str_cols(out);
                }
            }
            CompiledDimPred::True
            | CompiledDimPred::I32Eq { .. }
            | CompiledDimPred::I32Between { .. }
            | CompiledDimPred::I32In { .. } => {}
        }
    }
}

/// A dimension predicate compiled against sorted per-column dictionaries
/// ([`SortedDict`]): every string compare becomes a `u32` code compare.
/// Equality is one code lookup at compile time; a string range becomes one
/// inclusive code range because sorted dictionaries preserve order; a value
/// or range matching nothing in the dictionary folds to [`CodePred::Never`].
/// Semantics are exactly [`CompiledDimPred::eval`] over the same rows.
#[derive(Debug, Clone, PartialEq)]
pub enum CodePred {
    True,
    /// A string conjunct can never match (value absent / empty range).
    Never,
    CodeEq {
        col: usize,
        code: u32,
    },
    /// Sorted, deduplicated codes.
    CodeIn {
        col: usize,
        codes: Vec<u32>,
    },
    /// Inclusive code range.
    CodeBetween {
        col: usize,
        lo: u32,
        hi: u32,
    },
    I32Eq {
        col: usize,
        value: i32,
    },
    I32Between {
        col: usize,
        lo: i32,
        hi: i32,
    },
    I32In {
        col: usize,
        values: Vec<i32>,
    },
    And(Vec<CodePred>),
}

impl CodePred {
    /// Compile a predicate against dictionaries for its string columns
    /// (`dicts` must cover every index in [`CompiledDimPred::str_cols`]).
    pub fn compile(p: &CompiledDimPred, dicts: &FxHashMap<usize, SortedDict>) -> CodePred {
        let dict = |col: &usize| {
            dicts
                .get(col)
                .expect("dictionary built for predicate column")
        };
        match p {
            CompiledDimPred::True => CodePred::True,
            CompiledDimPred::StrEq { col, value } => match dict(col).code_of(value) {
                Some(code) => CodePred::CodeEq { col: *col, code },
                None => CodePred::Never,
            },
            CompiledDimPred::StrIn { col, values } => {
                let mut codes: Vec<u32> =
                    values.iter().filter_map(|v| dict(col).code_of(v)).collect();
                codes.sort_unstable();
                codes.dedup();
                if codes.is_empty() {
                    CodePred::Never
                } else {
                    CodePred::CodeIn { col: *col, codes }
                }
            }
            CompiledDimPred::StrBetween { col, lo, hi } => match dict(col).code_range(lo, hi) {
                Some((lo, hi)) => CodePred::CodeBetween { col: *col, lo, hi },
                None => CodePred::Never,
            },
            CompiledDimPred::I32Eq { col, value } => CodePred::I32Eq {
                col: *col,
                value: *value,
            },
            CompiledDimPred::I32Between { col, lo, hi } => CodePred::I32Between {
                col: *col,
                lo: *lo,
                hi: *hi,
            },
            CompiledDimPred::I32In { col, values } => CodePred::I32In {
                col: *col,
                values: values.clone(),
            },
            CompiledDimPred::And(preds) => {
                let compiled: Vec<CodePred> =
                    preds.iter().map(|p| CodePred::compile(p, dicts)).collect();
                if compiled.contains(&CodePred::Never) {
                    CodePred::Never
                } else {
                    CodePred::And(compiled)
                }
            }
        }
    }

    /// Evaluate for row `ri`: code conjuncts read the pre-encoded
    /// `codes[col][ri]`, integer conjuncts read the row itself.
    pub fn eval(&self, ri: usize, codes: &FxHashMap<usize, Vec<u32>>, row: &Row) -> bool {
        let code = |col: &usize| codes.get(col).expect("column encoded")[ri];
        match self {
            CodePred::True => true,
            CodePred::Never => false,
            CodePred::CodeEq { col, code: c } => code(col) == *c,
            CodePred::CodeIn { col, codes: cs } => cs.binary_search(&code(col)).is_ok(),
            CodePred::CodeBetween { col, lo, hi } => {
                let c = code(col);
                c >= *lo && c <= *hi
            }
            CodePred::I32Eq { col, value } => row.at(*col).as_i64() == Some(i64::from(*value)),
            CodePred::I32Between { col, lo, hi } => match row.at(*col).as_i64() {
                Some(v) => v >= i64::from(*lo) && v <= i64::from(*hi),
                None => false,
            },
            CodePred::I32In { col, values } => match row.at(*col).as_i64() {
                Some(v) => values.iter().any(|&x| i64::from(x) == v),
                None => false,
            },
            CodePred::And(preds) => preds.iter().all(|p| p.eval(ri, codes, row)),
        }
    }
}

/// One dimension join of a star query.
#[derive(Debug, Clone, PartialEq)]
pub struct DimJoin {
    /// Dimension table name (`"date"`, `"part"`, ...).
    pub dimension: String,
    /// Primary-key column of the dimension.
    pub pk: String,
    /// Foreign-key column of the fact table.
    pub fk: String,
    /// Filter applied while building the dimension hash table.
    pub predicate: DimPred,
    /// Auxiliary columns carried into the output (group-by columns).
    pub aux: Vec<String>,
}

/// The aggregated measure.
///
/// Every variant is an algebraic aggregate over `i64`: per-row evaluation
/// produces a value, and [`Aggregate::fold`] merges partials associatively
/// and commutatively — which is what lets map tasks pre-aggregate, combiners
/// shrink the shuffle, and reducers finish the job, all with one operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `sum(column)`
    SumColumn(String),
    /// `sum(a * b)` — flight 1's `lo_extendedprice * lo_discount`.
    SumProduct(String, String),
    /// `sum(a - b)` — flight 4's `lo_revenue - lo_supplycost`.
    SumDiff(String, String),
    /// `count(*)` over the qualifying rows.
    CountStar,
    /// `min(column)`.
    MinColumn(String),
    /// `max(column)`.
    MaxColumn(String),
}

impl Aggregate {
    /// Fact columns the measure reads.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Aggregate::SumColumn(a) | Aggregate::MinColumn(a) | Aggregate::MaxColumn(a) => {
                vec![a]
            }
            Aggregate::SumProduct(a, b) | Aggregate::SumDiff(a, b) => vec![a, b],
            Aggregate::CountStar => vec![],
        }
    }

    /// Evaluate the measure for row `i` of a block (i32 fact columns).
    /// `a`/`b` are the measure-column slices resolved by the probe plan;
    /// `CountStar` needs neither.
    #[inline]
    pub fn eval_i64(&self, a: Option<&[i32]>, b: Option<&[i32]>, i: usize) -> i64 {
        match self {
            Aggregate::SumColumn(_) | Aggregate::MinColumn(_) | Aggregate::MaxColumn(_) => {
                i64::from(a.expect("unary aggregate")[i])
            }
            Aggregate::SumProduct(_, _) => {
                i64::from(a.expect("binary aggregate")[i])
                    * i64::from(b.expect("binary aggregate")[i])
            }
            Aggregate::SumDiff(_, _) => {
                i64::from(a.expect("binary aggregate")[i])
                    - i64::from(b.expect("binary aggregate")[i])
            }
            Aggregate::CountStar => 1,
        }
    }

    /// Merge two partial aggregates.
    #[inline]
    pub fn fold(&self, acc: i64, v: i64) -> i64 {
        match self {
            Aggregate::SumColumn(_)
            | Aggregate::SumProduct(_, _)
            | Aggregate::SumDiff(_, _)
            | Aggregate::CountStar => acc + v,
            Aggregate::MinColumn(_) => acc.min(v),
            Aggregate::MaxColumn(_) => acc.max(v),
        }
    }

    /// Identity element of [`Aggregate::fold`].
    #[inline]
    pub fn identity(&self) -> i64 {
        match self {
            Aggregate::SumColumn(_)
            | Aggregate::SumProduct(_, _)
            | Aggregate::SumDiff(_, _)
            | Aggregate::CountStar => 0,
            Aggregate::MinColumn(_) => i64::MAX,
            Aggregate::MaxColumn(_) => i64::MIN,
        }
    }
}

/// One ORDER BY term.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderTerm {
    /// A group-by column, by name.
    Column(String),
    /// The aggregate value (`revenue desc` in flight 3).
    Aggregate,
}

/// A star-schema aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct StarQuery {
    /// `"Q2.1"` etc.
    pub id: String,
    pub joins: Vec<DimJoin>,
    pub fact_preds: Vec<FactPred>,
    /// Group-by columns: auxiliary dimension columns, in SELECT order.
    pub group_by: Vec<String>,
    pub aggregate: Aggregate,
    /// `(term, descending)` pairs.
    pub order_by: Vec<(OrderTerm, bool)>,
    /// Keep only the first `limit` result rows after the final sort
    /// (`None` = unlimited; the 13 SSB queries set no limit).
    pub limit: Option<usize>,
}

impl StarQuery {
    /// The fact-table columns this query scans: foreign keys of the joins,
    /// fact-predicate columns, and the measure columns — the list pushed
    /// into CIF so unneeded columns cost no I/O (paper Section 4.2).
    pub fn fact_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        let mut push = |c: &str| {
            if !cols.iter().any(|x| x == c) {
                cols.push(c.to_string());
            }
        };
        for j in &self.joins {
            push(&j.fk);
        }
        for p in &self.fact_preds {
            push(p.column());
        }
        for c in self.aggregate.columns() {
            push(c);
        }
        cols
    }

    /// Resolve a group-by column to the join that provides it.
    pub fn group_col_source(&self, name: &str) -> Result<(usize, usize)> {
        for (ji, j) in self.joins.iter().enumerate() {
            if let Some(ai) = j.aux.iter().position(|a| a == name) {
                return Ok((ji, ai));
            }
        }
        Err(ClydeError::Plan(format!(
            "group-by column {name} is not an auxiliary column of any join"
        )))
    }

    /// Sort `groups` (group key + trailing aggregate) by the ORDER BY spec.
    pub fn sort_result(&self, rows: &mut [Row]) {
        let agg_idx = self.group_by.len();
        let keys: Vec<(usize, bool)> = self
            .order_by
            .iter()
            .map(|(term, desc)| {
                let idx = match term {
                    OrderTerm::Aggregate => agg_idx,
                    OrderTerm::Column(name) => self
                        .group_by
                        .iter()
                        .position(|g| g == name)
                        .expect("order-by column must be in the group-by list"),
                };
                (idx, *desc)
            })
            .collect();
        rows.sort_by(|a, b| {
            for &(idx, desc) in &keys {
                let ord = a.at(idx).cmp(b.at(idx));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // Total order for determinism.
            a.cmp(b)
        });
    }

    /// Sort and truncate a result set per the query's ORDER BY and LIMIT.
    pub fn finish_result(&self, rows: &mut Vec<Row>) {
        self.sort_result(rows);
        if let Some(l) = self.limit {
            rows.truncate(l);
        }
    }

    /// Validate the query against the SSB schemas.
    pub fn validate(&self) -> Result<()> {
        let fact = schema::lineorder_schema();
        for c in self.fact_columns() {
            fact.index_of(&c)?;
        }
        for j in &self.joins {
            let dim = schema::schema_of(&j.dimension)
                .ok_or_else(|| ClydeError::Plan(format!("unknown dimension {}", j.dimension)))?;
            dim.index_of(&j.pk)?;
            for a in &j.aux {
                dim.index_of(a)?;
            }
            j.predicate.compile(&dim)?;
        }
        for g in &self.group_by {
            self.group_col_source(g)?;
        }
        Ok(())
    }
}

fn date_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: schema::DATE.into(),
        pk: "d_datekey".into(),
        fk: "lo_orderdate".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn customer_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: schema::CUSTOMER.into(),
        pk: "c_custkey".into(),
        fk: "lo_custkey".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn supplier_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: schema::SUPPLIER.into(),
        pk: "s_suppkey".into(),
        fk: "lo_suppkey".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn part_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: schema::PART.into(),
        pk: "p_partkey".into(),
        fk: "lo_partkey".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn str_eq(column: &str, value: &str) -> DimPred {
    DimPred::StrEq {
        column: column.into(),
        value: value.into(),
    }
}

/// All 13 SSB queries in flight order.
pub fn all_queries() -> Vec<StarQuery> {
    let mut out = Vec::with_capacity(13);

    // ---- Flight 1: one join (date), fact predicates, no grouping. ----
    out.push(StarQuery {
        id: "Q1.1".into(),
        joins: vec![date_join(
            DimPred::I32Eq {
                column: "d_year".into(),
                value: 1993,
            },
            &[],
        )],
        fact_preds: vec![
            FactPred::I32Between {
                column: "lo_discount".into(),
                lo: 1,
                hi: 3,
            },
            FactPred::I32Lt {
                column: "lo_quantity".into(),
                value: 25,
            },
        ],
        group_by: vec![],
        aggregate: Aggregate::SumProduct("lo_extendedprice".into(), "lo_discount".into()),
        order_by: vec![],
        limit: None,
    });
    out.push(StarQuery {
        id: "Q1.2".into(),
        joins: vec![date_join(
            DimPred::I32Eq {
                column: "d_yearmonthnum".into(),
                value: 199401,
            },
            &[],
        )],
        fact_preds: vec![
            FactPred::I32Between {
                column: "lo_discount".into(),
                lo: 4,
                hi: 6,
            },
            FactPred::I32Between {
                column: "lo_quantity".into(),
                lo: 26,
                hi: 35,
            },
        ],
        group_by: vec![],
        aggregate: Aggregate::SumProduct("lo_extendedprice".into(), "lo_discount".into()),
        order_by: vec![],
        limit: None,
    });
    out.push(StarQuery {
        id: "Q1.3".into(),
        joins: vec![date_join(
            DimPred::And(vec![
                DimPred::I32Eq {
                    column: "d_weeknuminyear".into(),
                    value: 6,
                },
                DimPred::I32Eq {
                    column: "d_year".into(),
                    value: 1994,
                },
            ]),
            &[],
        )],
        fact_preds: vec![
            FactPred::I32Between {
                column: "lo_discount".into(),
                lo: 5,
                hi: 7,
            },
            FactPred::I32Between {
                column: "lo_quantity".into(),
                lo: 26,
                hi: 35,
            },
        ],
        group_by: vec![],
        aggregate: Aggregate::SumProduct("lo_extendedprice".into(), "lo_discount".into()),
        order_by: vec![],
        limit: None,
    });

    // ---- Flight 2: part + supplier + date; group by year, brand. ----
    // Join order follows the SQL FROM clause (lineorder, date, part,
    // supplier), so the Hive baseline's stage order matches the paper's
    // Q2.1 narrative: Date first, then Part, then Supplier.
    let flight2 = |id: &str, part_pred: DimPred, region: &str| StarQuery {
        id: id.into(),
        joins: vec![
            date_join(DimPred::True, &["d_year"]),
            part_join(part_pred, &["p_brand1"]),
            supplier_join(str_eq("s_region", region), &[]),
        ],
        fact_preds: vec![],
        group_by: vec!["d_year".into(), "p_brand1".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: vec![
            (OrderTerm::Column("d_year".into()), false),
            (OrderTerm::Column("p_brand1".into()), false),
        ],
        limit: None,
    };
    out.push(flight2("Q2.1", str_eq("p_category", "MFGR#12"), "AMERICA"));
    out.push(flight2(
        "Q2.2",
        DimPred::StrBetween {
            column: "p_brand1".into(),
            lo: "MFGR#2221".into(),
            hi: "MFGR#2228".into(),
        },
        "ASIA",
    ));
    out.push(flight2("Q2.3", str_eq("p_brand1", "MFGR#2239"), "EUROPE"));

    // ---- Flight 3: customer + supplier + date; revenue desc ordering. ----
    let year_range = DimPred::I32Between {
        column: "d_year".into(),
        lo: 1992,
        hi: 1997,
    };
    let flight3_order = vec![
        (OrderTerm::Column("d_year".into()), false),
        (OrderTerm::Aggregate, true),
    ];
    out.push(StarQuery {
        id: "Q3.1".into(),
        joins: vec![
            customer_join(str_eq("c_region", "ASIA"), &["c_nation"]),
            supplier_join(str_eq("s_region", "ASIA"), &["s_nation"]),
            date_join(year_range.clone(), &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["c_nation".into(), "s_nation".into(), "d_year".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: flight3_order.clone(),
        limit: None,
    });
    out.push(StarQuery {
        id: "Q3.2".into(),
        joins: vec![
            customer_join(str_eq("c_nation", "UNITED STATES"), &["c_city"]),
            supplier_join(str_eq("s_nation", "UNITED STATES"), &["s_city"]),
            date_join(year_range.clone(), &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["c_city".into(), "s_city".into(), "d_year".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: flight3_order.clone(),
        limit: None,
    });
    let two_cities = |column: &str| DimPred::StrIn {
        column: column.into(),
        values: vec!["UNITED KI1".into(), "UNITED KI5".into()],
    };
    out.push(StarQuery {
        id: "Q3.3".into(),
        joins: vec![
            customer_join(two_cities("c_city"), &["c_city"]),
            supplier_join(two_cities("s_city"), &["s_city"]),
            date_join(year_range, &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["c_city".into(), "s_city".into(), "d_year".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: flight3_order.clone(),
        limit: None,
    });
    out.push(StarQuery {
        id: "Q3.4".into(),
        joins: vec![
            customer_join(two_cities("c_city"), &["c_city"]),
            supplier_join(two_cities("s_city"), &["s_city"]),
            date_join(str_eq("d_yearmonth", "Dec1997"), &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["c_city".into(), "s_city".into(), "d_year".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: flight3_order,
        limit: None,
    });

    // ---- Flight 4: all four dimensions; profit = revenue - supplycost. ----
    let mfgr_12 = DimPred::StrIn {
        column: "p_mfgr".into(),
        values: vec!["MFGR#1".into(), "MFGR#2".into()],
    };
    let years_97_98 = DimPred::I32In {
        column: "d_year".into(),
        values: vec![1997, 1998],
    };
    let profit = Aggregate::SumDiff("lo_revenue".into(), "lo_supplycost".into());
    out.push(StarQuery {
        id: "Q4.1".into(),
        joins: vec![
            customer_join(str_eq("c_region", "AMERICA"), &["c_nation"]),
            supplier_join(str_eq("s_region", "AMERICA"), &[]),
            part_join(mfgr_12.clone(), &[]),
            date_join(DimPred::True, &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["d_year".into(), "c_nation".into()],
        aggregate: profit.clone(),
        order_by: vec![
            (OrderTerm::Column("d_year".into()), false),
            (OrderTerm::Column("c_nation".into()), false),
        ],
        limit: None,
    });
    out.push(StarQuery {
        id: "Q4.2".into(),
        joins: vec![
            customer_join(str_eq("c_region", "AMERICA"), &[]),
            supplier_join(str_eq("s_region", "AMERICA"), &["s_nation"]),
            part_join(mfgr_12, &["p_category"]),
            date_join(years_97_98.clone(), &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["d_year".into(), "s_nation".into(), "p_category".into()],
        aggregate: profit.clone(),
        order_by: vec![
            (OrderTerm::Column("d_year".into()), false),
            (OrderTerm::Column("s_nation".into()), false),
            (OrderTerm::Column("p_category".into()), false),
        ],
        limit: None,
    });
    out.push(StarQuery {
        id: "Q4.3".into(),
        joins: vec![
            customer_join(str_eq("c_region", "AMERICA"), &[]),
            supplier_join(str_eq("s_nation", "UNITED STATES"), &["s_city"]),
            part_join(str_eq("p_category", "MFGR#14"), &["p_brand1"]),
            date_join(years_97_98, &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["d_year".into(), "s_city".into(), "p_brand1".into()],
        aggregate: profit,
        order_by: vec![
            (OrderTerm::Column("d_year".into()), false),
            (OrderTerm::Column("s_city".into()), false),
            (OrderTerm::Column("p_brand1".into()), false),
        ],
        limit: None,
    });

    out
}

/// Look up a query by id (`"Q3.2"`).
pub fn query_by_id(id: &str) -> Result<StarQuery> {
    all_queries()
        .into_iter()
        .find(|q| q.id == id)
        .ok_or_else(|| ClydeError::Plan(format!("unknown SSB query: {id}")))
}

/// Convenience: evaluate a compiled fact predicate list against a row of
/// datums (used by the reference executor and the Hive row pipeline).
pub fn fact_preds_eval_row(preds: &[FactPred], row: &Row, schema: &Schema) -> Result<bool> {
    for p in preds {
        let idx = schema.index_of(p.column())?;
        let v = row
            .at(idx)
            .as_i64()
            .ok_or_else(|| ClydeError::Plan("fact predicate on non-integer column".into()))?;
        let pass = match p {
            FactPred::I32Between { lo, hi, .. } => v >= i64::from(*lo) && v <= i64::from(*hi),
            FactPred::I32Lt { value, .. } => v < i64::from(*value),
        };
        if !pass {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluate an aggregate measure against a full fact row.
pub fn aggregate_eval_row(agg: &Aggregate, row: &Row, schema: &Schema) -> Result<i64> {
    let get = |c: &str| -> Result<i64> {
        row.at(schema.index_of(c)?)
            .as_i64()
            .ok_or_else(|| ClydeError::Plan(format!("measure column {c} is not an integer")))
    };
    Ok(match agg {
        Aggregate::SumColumn(a) | Aggregate::MinColumn(a) | Aggregate::MaxColumn(a) => get(a)?,
        Aggregate::SumProduct(a, b) => get(a)? * get(b)?,
        Aggregate::SumDiff(a, b) => get(a)? - get(b)?,
        Aggregate::CountStar => 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;

    #[test]
    fn thirteen_queries_in_four_flights() {
        let qs = all_queries();
        assert_eq!(qs.len(), 13);
        let ids: Vec<&str> = qs.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q3.2", "Q3.3", "Q3.4",
                "Q4.1", "Q4.2", "Q4.3"
            ]
        );
        // Flight membership by join fan-out, as in the paper's description.
        assert!(qs[0..3].iter().all(|q| q.joins.len() == 1));
        assert!(qs[3..6].iter().all(|q| q.joins.len() == 3));
        assert!(qs[6..10].iter().all(|q| q.joins.len() == 3));
        assert!(qs[10..13].iter().all(|q| q.joins.len() == 4));
    }

    #[test]
    fn all_queries_validate_against_schemas() {
        for q in all_queries() {
            q.validate().unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn fact_columns_are_minimal_and_unique() {
        let q21 = query_by_id("Q2.1").unwrap();
        let cols = q21.fact_columns();
        assert_eq!(
            cols,
            vec!["lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"]
        );
        let q11 = query_by_id("Q1.1").unwrap();
        let cols = q11.fact_columns();
        assert_eq!(
            cols,
            vec![
                "lo_orderdate",
                "lo_discount",
                "lo_quantity",
                "lo_extendedprice"
            ]
        );
    }

    #[test]
    fn unknown_query_id_errors() {
        assert!(query_by_id("Q9.9").is_err());
    }

    #[test]
    fn dim_pred_evaluation() {
        let s = crate::schema::date_schema();
        let d = crate::gen::SsbGen::new(0.001, 1).gen_date();
        let year93 = DimPred::I32Eq {
            column: "d_year".into(),
            value: 1993,
        }
        .compile(&s)
        .unwrap();
        let matches = d.iter().filter(|r| year93.eval(r)).count();
        assert_eq!(matches, 365);

        let dec97 = DimPred::StrEq {
            column: "d_yearmonth".into(),
            value: "Dec1997".into(),
        }
        .compile(&s)
        .unwrap();
        assert_eq!(d.iter().filter(|r| dec97.eval(r)).count(), 31);

        let week6 = DimPred::And(vec![
            DimPred::I32Eq {
                column: "d_weeknuminyear".into(),
                value: 6,
            },
            DimPred::I32Eq {
                column: "d_year".into(),
                value: 1994,
            },
        ])
        .compile(&s)
        .unwrap();
        assert_eq!(d.iter().filter(|r| week6.eval(r)).count(), 7);
    }

    #[test]
    fn str_preds() {
        let s = crate::schema::part_schema();
        let between = DimPred::StrBetween {
            column: "p_brand1".into(),
            lo: "MFGR#2221".into(),
            hi: "MFGR#2228".into(),
        }
        .compile(&s)
        .unwrap();
        let mk = |brand: &str| row![1i32, "n", "MFGR#2", "MFGR#22", brand, "c", "t", 1i32, "box"];
        assert!(between.eval(&mk("MFGR#2221")));
        assert!(between.eval(&mk("MFGR#2225")));
        assert!(between.eval(&mk("MFGR#2228")));
        assert!(!between.eval(&mk("MFGR#2229")));
        assert!(!between.eval(&mk("MFGR#221"))); // 1-digit brand sorts below
        let in_pred = DimPred::StrIn {
            column: "p_mfgr".into(),
            values: vec!["MFGR#1".into(), "MFGR#2".into()],
        }
        .compile(&s)
        .unwrap();
        assert!(in_pred.eval(&mk("MFGR#2221")));
    }

    #[test]
    fn sort_result_applies_descending_aggregate() {
        let q = query_by_id("Q3.1").unwrap();
        // rows: (c_nation, s_nation, d_year, revenue)
        let mut rows = vec![
            row!["CHINA", "JAPAN", 1993i32, 50i64],
            row!["CHINA", "INDIA", 1992i32, 10i64],
            row!["JAPAN", "CHINA", 1992i32, 99i64],
            row!["INDIA", "CHINA", 1993i32, 70i64],
        ];
        q.sort_result(&mut rows);
        assert_eq!(rows[0], row!["JAPAN", "CHINA", 1992i32, 99i64]);
        assert_eq!(rows[1], row!["CHINA", "INDIA", 1992i32, 10i64]);
        assert_eq!(rows[2], row!["INDIA", "CHINA", 1993i32, 70i64]);
        assert_eq!(rows[3], row!["CHINA", "JAPAN", 1993i32, 50i64]);
    }

    #[test]
    fn group_col_source_resolution() {
        let q = query_by_id("Q4.2").unwrap();
        assert_eq!(q.group_col_source("d_year").unwrap(), (3, 0));
        assert_eq!(q.group_col_source("s_nation").unwrap(), (1, 0));
        assert!(q.group_col_source("c_city").is_err());
    }

    #[test]
    fn aggregate_row_eval() {
        let s = crate::schema::lineorder_schema();
        let data = crate::gen::SsbGen::new(0.0005, 2).gen_all();
        let lo = &data.lineorder[0];
        let rev = aggregate_eval_row(&Aggregate::SumColumn("lo_revenue".into()), lo, &s).unwrap();
        assert!(rev > 0);
        let profit = aggregate_eval_row(
            &Aggregate::SumDiff("lo_revenue".into(), "lo_supplycost".into()),
            lo,
            &s,
        )
        .unwrap();
        assert!(profit < rev);
    }
}
