//! Deterministic, locality-aware task scheduling.
//!
//! Reproduces the two scheduler behaviours the paper relies on:
//!
//! 1. **Locality-aware assignment** (Section 3): a split lists the nodes
//!    holding its data; the scheduler places the task on the least-loaded of
//!    them, falling back to the least-loaded node overall.
//! 2. **Capacity scheduling by declared memory** (Section 5.2): a job can
//!    mark its map tasks as requiring a large amount of memory; the number
//!    of concurrently admitted tasks per node is then
//!    `min(map_slots, floor(node_memory / task_memory))`, which Clydesdale
//!    sets to exactly one task per node.
//!
//! Assignments are computed up front and deterministically, so simulated
//! makespans are reproducible regardless of real thread interleaving.

use crate::input::InputSplit;
use clyde_dfs::{ClusterSpec, NodeId};

/// How many tasks of this job a node may run at once.
pub fn concurrency_per_node(cluster: &ClusterSpec, declared_task_memory: u64) -> u32 {
    let slots = cluster.map_slots.max(1);
    if declared_task_memory == 0 {
        return slots;
    }
    let by_memory = cluster.node.memory_bytes / declared_task_memory.max(1);
    (by_memory.min(u64::from(slots)) as u32).max(1)
}

/// Assign each split to a node. Returns `assignment[i] = node of splits[i]`.
///
/// Greedy in split order: prefer the listed host with the least pending
/// bytes; if the split has no hosts (or only dead ones — callers filter),
/// use the globally least-loaded node. Ties break toward the lowest node id,
/// making the whole assignment a pure function of its inputs.
pub fn assign_map_tasks(splits: &[InputSplit], cluster: &ClusterSpec) -> Vec<NodeId> {
    let n = cluster.num_workers();
    let mut pending = vec![0u64; n];
    let mut out = Vec::with_capacity(splits.len());
    for split in splits {
        let candidates: Vec<NodeId> = if split.hosts.is_empty() {
            (0..n).map(NodeId).collect()
        } else {
            split.hosts.iter().copied().filter(|h| h.0 < n).collect()
        };
        let candidates = if candidates.is_empty() {
            (0..n).map(NodeId).collect()
        } else {
            candidates
        };
        let chosen = candidates
            .iter()
            .copied()
            .min_by_key(|c| (pending[c.0], c.0))
            .expect("candidates never empty");
        pending[chosen.0] += split.bytes.max(1);
        out.push(chosen);
    }
    out
}

/// Assign `num_tasks` reduce tasks round-robin over the workers.
pub fn assign_reduce_tasks(num_tasks: usize, cluster: &ClusterSpec) -> Vec<NodeId> {
    let n = cluster.num_workers().max(1);
    (0..num_tasks).map(|i| NodeId(i % n)).collect()
}

/// Fraction of splits whose assigned node is one of their preferred hosts.
pub fn locality_fraction(splits: &[InputSplit], assignment: &[NodeId]) -> f64 {
    if splits.is_empty() {
        return 1.0;
    }
    let local = splits
        .iter()
        .zip(assignment)
        .filter(|(s, a)| s.hosts.is_empty() || s.hosts.contains(a))
        .count();
    local as f64 / splits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SplitSpec;

    fn split(index: usize, hosts: Vec<usize>, bytes: u64) -> InputSplit {
        InputSplit {
            index,
            spec: SplitSpec::FileRange {
                path: format!("/f{index}"),
                offset: 0,
                len: bytes,
            },
            hosts: hosts.into_iter().map(NodeId).collect(),
            bytes,
        }
    }

    #[test]
    fn prefers_listed_hosts() {
        let cluster = ClusterSpec::tiny(4);
        let splits = vec![split(0, vec![2], 10), split(1, vec![2, 3], 10)];
        let a = assign_map_tasks(&splits, &cluster);
        assert_eq!(a[0], NodeId(2));
        // Second split prefers node 3 because node 2 already has load.
        assert_eq!(a[1], NodeId(3));
        assert_eq!(locality_fraction(&splits, &a), 1.0);
    }

    #[test]
    fn balances_load_without_hosts() {
        let cluster = ClusterSpec::tiny(3);
        let splits: Vec<InputSplit> = (0..9).map(|i| split(i, vec![], 100)).collect();
        let a = assign_map_tasks(&splits, &cluster);
        for node in 0..3 {
            assert_eq!(a.iter().filter(|n| n.0 == node).count(), 3);
        }
    }

    #[test]
    fn out_of_range_hosts_are_ignored() {
        let cluster = ClusterSpec::tiny(2);
        let splits = vec![split(0, vec![7], 10)];
        let a = assign_map_tasks(&splits, &cluster);
        assert!(a[0].0 < 2);
    }

    #[test]
    fn assignment_is_deterministic() {
        let cluster = ClusterSpec::tiny(5);
        let splits: Vec<InputSplit> = (0..20)
            .map(|i| split(i, vec![i % 5, (i + 1) % 5], 50 + i as u64))
            .collect();
        assert_eq!(
            assign_map_tasks(&splits, &cluster),
            assign_map_tasks(&splits, &cluster)
        );
    }

    #[test]
    fn capacity_scheduling_limits_concurrency() {
        let cluster = ClusterSpec::tiny(2); // 2 map slots, 4 GB nodes
        assert_eq!(concurrency_per_node(&cluster, 0), 2);
        // Declaring 3 GB per task admits only one task at a time.
        assert_eq!(concurrency_per_node(&cluster, 3 << 30), 1);
        // Declaring tiny memory is still capped by slots.
        assert_eq!(concurrency_per_node(&cluster, 1), 2);
        // Declaring more than node memory still admits one (Hadoop would
        // reject; we degrade to serial execution).
        assert_eq!(concurrency_per_node(&cluster, 1 << 40), 1);
    }

    #[test]
    fn reduce_round_robin() {
        let cluster = ClusterSpec::tiny(3);
        assert_eq!(
            assign_reduce_tasks(5, &cluster),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0), NodeId(1)]
        );
    }
}
