//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The scalar types understood by the storage formats and query engines.
///
/// The Star Schema Benchmark only needs 32/64-bit integers and strings, but
/// `F64` is included because measure expressions (e.g. average revenue) can
/// produce fractional values and because downstream users of the library are
/// not limited to SSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatumType {
    I32,
    I64,
    F64,
    Str,
}

impl DatumType {
    /// Stable one-byte tag used by the serialized formats.
    pub fn tag(self) -> u8 {
        match self {
            DatumType::I32 => 0,
            DatumType::I64 => 1,
            DatumType::F64 => 2,
            DatumType::Str => 3,
        }
    }

    /// Inverse of [`DatumType::tag`].
    pub fn from_tag(tag: u8) -> Option<DatumType> {
        match tag {
            0 => Some(DatumType::I32),
            1 => Some(DatumType::I64),
            2 => Some(DatumType::F64),
            3 => Some(DatumType::Str),
            _ => None,
        }
    }

    /// Width in bytes of the fixed-size types; `None` for strings.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DatumType::I32 => Some(4),
            DatumType::I64 => Some(8),
            DatumType::F64 => Some(8),
            DatumType::Str => None,
        }
    }
}

impl fmt::Display for DatumType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DatumType::I32 => "i32",
            DatumType::I64 => "i64",
            DatumType::F64 => "f64",
            DatumType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed value.
///
/// Strings are reference-counted so that cloning a `Datum` (which happens
/// when dimension hash tables hand auxiliary columns to the probe phase)
/// never copies the character data.
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    I32(i32),
    I64(i64),
    F64(f64),
    Str(Arc<str>),
}

impl Datum {
    /// Construct a string datum from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Datum {
        Datum::Str(Arc::from(s.as_ref()))
    }

    /// The value's type, or `None` for SQL NULL.
    pub fn datum_type(&self) -> Option<DatumType> {
        match self {
            Datum::Null => None,
            Datum::I32(_) => Some(DatumType::I32),
            Datum::I64(_) => Some(DatumType::I64),
            Datum::F64(_) => Some(DatumType::F64),
            Datum::Str(_) => Some(DatumType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Integer view widening `I32` to `i64`; `None` for other types.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::I32(v) => Some(i64::from(*v)),
            Datum::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Datum::I32(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::F64(v) => Some(*v),
            Datum::I32(v) => Some(f64::from(*v)),
            Datum::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory footprint, used by the memory model that decides
    /// whether dimension hash tables fit on a node (paper Section 5.1).
    pub fn heap_size(&self) -> usize {
        match self {
            Datum::Str(s) => std::mem::size_of::<Datum>() + s.len(),
            _ => std::mem::size_of::<Datum>(),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    /// Total order: NULL sorts first (as in most SQL engines' default
    /// ascending order), then by type tag for heterogeneous comparisons,
    /// then by value. Floats use `total_cmp` so the order is total.
    fn cmp(&self, other: &Self) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (I32(a), I32(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (I32(a), I64(b)) => i64::from(*a).cmp(b),
            (I64(a), I32(b)) => a.cmp(&i64::from(*b)),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Heterogeneous, non-coercible: order by type tag. This keeps the
            // order total, which the sort-based shuffle requires.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => state.write_u8(0),
            // Hash I32 and I64 identically so Datum equality (which coerces
            // between the two) is consistent with hashing.
            Datum::I32(v) => {
                state.write_u8(1);
                state.write_i64(i64::from(*v));
            }
            Datum::I64(v) => {
                state.write_u8(1);
                state.write_i64(*v);
            }
            Datum::F64(v) => {
                state.write_u8(2);
                state.write_u64(v.to_bits());
            }
            Datum::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
        }
    }
}

fn type_rank(d: &Datum) -> u8 {
    match d {
        Datum::Null => 0,
        Datum::I32(_) | Datum::I64(_) => 1,
        Datum::F64(_) => 2,
        Datum::Str(_) => 3,
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::I32(v) => write!(f, "{v}"),
            Datum::I64(v) => write!(f, "{v}"),
            Datum::F64(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i32> for Datum {
    fn from(v: i32) -> Self {
        Datum::I32(v)
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::I64(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::F64(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::str(v)
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(d: &Datum) -> u64 {
        let mut h = DefaultHasher::new();
        d.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags_roundtrip() {
        for t in [
            DatumType::I32,
            DatumType::I64,
            DatumType::F64,
            DatumType::Str,
        ] {
            assert_eq!(DatumType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(DatumType::from_tag(200), None);
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DatumType::I32.fixed_width(), Some(4));
        assert_eq!(DatumType::I64.fixed_width(), Some(8));
        assert_eq!(DatumType::F64.fixed_width(), Some(8));
        assert_eq!(DatumType::Str.fixed_width(), None);
    }

    #[test]
    fn cross_width_integer_equality_is_consistent_with_hash() {
        let a = Datum::I32(42);
        let b = Datum::I64(42);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Datum::Null < Datum::I32(i32::MIN));
        assert!(Datum::Null < Datum::str(""));
    }

    #[test]
    fn string_order_is_lexicographic() {
        assert!(Datum::str("ASIA") < Datum::str("EUROPE"));
        assert!(Datum::str("MFGR#12") < Datum::str("MFGR#13"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::I32(5).as_i64(), Some(5));
        assert_eq!(Datum::I64(5).as_i32(), None);
        assert_eq!(Datum::str("x").as_str(), Some("x"));
        assert_eq!(Datum::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Datum::I32(2).as_f64(), Some(2.0));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Null.datum_type(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::I64(-7).to_string(), "-7");
        assert_eq!(Datum::str("abc").to_string(), "abc");
        assert_eq!(DatumType::Str.to_string(), "str");
    }

    #[test]
    fn heap_size_counts_string_bytes() {
        let short = Datum::str("a");
        let long = Datum::str("aaaaaaaaaaaaaaaaaaaaaaaa");
        assert!(long.heap_size() > short.heap_size());
        assert_eq!(Datum::I32(1).heap_size(), std::mem::size_of::<Datum>());
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Datum::F64(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Datum::F64(1.0) < Datum::F64(2.0));
    }
}
