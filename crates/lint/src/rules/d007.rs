//! D007 `panicfree`: no panic-capable sites in designated recovery code.
//!
//! The fault-tolerance claims (six fault plans, byte-identical recovery)
//! are only as good as the recovery paths' inability to panic: an `unwrap`
//! on the re-replication path turns a survivable fault into an abort. This
//! rule designates the recovery surface explicitly — whole files or named
//! functions — and flags, in non-test code:
//!
//! * `.unwrap()` / `.expect(…)` method calls (`unwrap_or*`/`expect_err`
//!   are distinct names and unaffected);
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! * unchecked indexing/slicing `x[i]` (a `[` following an identifier,
//!   `)`, or `]`) — use `get`/`first`/`split_first` and return a typed
//!   [`ClydeError`](../../../common/src/error.rs) instead.
//!
//! Grandfathered sites live in `crates/lint/baseline.lint` with a CI-
//! enforced downward ratchet; new ones fail the build.

use super::FileCtx;
use crate::lexer::TokKind;
use crate::{Rule, Violation};

/// The recovery surface: `(file suffix, scoped fn names)`. An empty fn list
/// audits every non-test function in the file.
pub const D007_RECOVERY: &[(&str, &[&str])] = &[
    // Fault-plan bookkeeping: consulted while a job is already degraded.
    ("crates/mapred/src/fault.rs", &[]),
    // Datanode block store: the re-replication read/write path.
    ("crates/dfs/src/datanode.rs", &[]),
    // Namespace-level re-replication after a node loss.
    ("crates/dfs/src/dfs.rs", &["rereplicate"]),
    // Speculative commit, retry placement, and injected-failure paths.
    (
        "crates/mapred/src/engine.rs",
        &["run_job_inner", "retry_node", "injected_failure"],
    ),
    // Admission control: must reject, never abort, under overload.
    ("crates/mapred/src/server.rs", &["submit", "drain"]),
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// The scoped fn list for `file`, if the file is on the recovery surface.
fn scope_for(file: &std::path::Path) -> Option<&'static [&'static str]> {
    let norm: String = file
        .to_string_lossy()
        .replace('\\', "/")
        .trim_start_matches("./")
        .to_string();
    D007_RECOVERY
        .iter()
        .find(|(suffix, _)| norm.ends_with(suffix))
        .map(|(_, fns)| *fns)
}

pub(crate) fn scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    let Some(fn_scope) = scope_for(ctx.file) else {
        return;
    };
    let ast = ctx.ast;
    for f in ast.fns.iter().filter(|f| !f.is_test && !f.nested) {
        if !fn_scope.is_empty() && !fn_scope.contains(&f.name.as_str()) {
            continue;
        }
        for i in f.body.clone() {
            let t = &ast.sig[i];
            if t.kind == TokKind::Ident {
                let is_call = ast.is_punct(i + 1, "(");
                let is_method = i > 0 && ast.is_punct(i - 1, ".");
                if is_call && is_method && (t.text == "unwrap" || t.text == "expect") {
                    violations.push(Violation {
                        file: ctx.file.to_path_buf(),
                        line: ast.line(i),
                        rule: Rule::PanicFree,
                        message: format!(
                            "`.{}()` on the recovery path (fn `{}`) — a panic here turns \
                             a survivable fault into an abort; return a typed ClydeError",
                            t.text, f.name
                        ),
                    });
                    continue;
                }
                if ast.is_punct(i + 1, "!")
                    && (ast.is_punct(i + 2, "(") || ast.is_punct(i + 2, "["))
                    && PANIC_MACROS.contains(&t.text.as_str())
                {
                    violations.push(Violation {
                        file: ctx.file.to_path_buf(),
                        line: ast.line(i),
                        rule: Rule::PanicFree,
                        message: format!(
                            "`{}!` on the recovery path (fn `{}`) — recovery code must \
                             degrade to a typed ClydeError, never abort",
                            t.text, f.name
                        ),
                    });
                    continue;
                }
            }
            // Unchecked indexing/slicing: `expr[…]` where expr ends in an
            // identifier, `)`, or `]`. Attribute (`#[`) and macro (`m![`)
            // brackets are preceded by `#`/`!` and never match.
            if t.kind == TokKind::Punct && t.text == "[" && i > 0 {
                let prev = &ast.sig[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !crate::parse::is_keyword(&prev.text),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes {
                    violations.push(Violation {
                        file: ctx.file.to_path_buf(),
                        line: ast.line(i),
                        rule: Rule::PanicFree,
                        message: format!(
                            "unchecked indexing on the recovery path (fn `{}`) — use \
                             get()/first() and return a typed ClydeError on the miss",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}
