//! Validate a Chrome trace-event JSON file produced by `--trace`.
//!
//! Usage: `trace_check <trace.json>`. Checks that the file is well-formed
//! JSON, that every event carries the required fields, and that within each
//! (pid, tid) track the "X" events appear with monotone non-decreasing
//! timestamps — the invariant the deterministic serializer guarantees and
//! Perfetto's nesting logic relies on. Exits non-zero on any violation, so
//! CI can gate on it.

use clyde_common::obs::json::{self, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_check <trace.json>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };
    let events = match root.get("traceEvents").and_then(Json::as_arr) {
        Some(a) => a,
        None => return fail("missing traceEvents array"),
    };

    let mut x_events = 0usize;
    // BTreeMap, not HashMap: the validator's own output (track count, and
    // any future per-track reporting) must be as deterministic as the traces
    // it checks (clyde-lint D001).
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph").and_then(Json::as_str) {
            Some(p) => p,
            None => return fail(&format!("event {i} has no ph")),
        };
        let need_num = |field: &str| -> Result<f64, String> {
            ev.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i} (ph={ph}) missing numeric {field}"))
        };
        if ev.get("name").and_then(Json::as_str).is_none() {
            return fail(&format!("event {i} has no name"));
        }
        let pid = match need_num("pid") {
            Ok(v) => v as u64,
            Err(e) => return fail(&e),
        };
        match ph {
            "M" => {} // metadata: name/pid (+ optional tid) suffice
            "X" => {
                let tid = match need_num("tid") {
                    Ok(v) => v as u64,
                    Err(e) => return fail(&e),
                };
                let ts = match need_num("ts") {
                    Ok(v) => v,
                    Err(e) => return fail(&e),
                };
                if need_num("dur").is_err() {
                    return fail(&format!("event {i} (X) missing numeric dur"));
                }
                if let Some(prev) = last_ts.insert((pid, tid), ts) {
                    if ts < prev {
                        return fail(&format!(
                            "track (pid {pid}, tid {tid}): ts went backwards at event {i} \
                             ({ts} after {prev})"
                        ));
                    }
                }
                x_events += 1;
            }
            other => return fail(&format!("event {i} has unexpected ph \"{other}\"")),
        }
    }
    if x_events == 0 {
        return fail("trace contains no X (duration) events");
    }
    println!(
        "trace_check: OK: {x_events} duration events across {} tracks",
        last_ts.len()
    );
    ExitCode::SUCCESS
}
