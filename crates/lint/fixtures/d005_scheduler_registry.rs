//! D005 fixture: the `scheduler.*` namespace is closed — a literal name
//! must be one of `clyde_lint::D005_SCHEDULER_METRICS`. The CI
//! `workload-gate` job reads these series by name, so an unregistered one
//! would silently escape the gate.

struct Metrics;
impl Metrics {
    fn add(&self, _name: &str, _delta: u64) {}
}

fn emit(m: &Metrics) {
    // Right namespace, but not a registered series.
    m.counter_add("scheduler.queue_drops", 1);
    // A typo'd registered series is still unregistered.
    m.gauge_set("scheduler.tenant_counts", 3.0);
}
