//! Cold-then-warm replay of the mixed-tenant workload against the
//! ReStore-style result cache.
//!
//! The seeded stream of [`crate::workload`] is **arrival-dominated**: its
//! 186 s cold makespan is mostly submission spacing (the dash tenant
//! staggers refreshes 10 s apart), which would hide any engine-side win.
//! Throughput here must measure the engine, not the submission schedule,
//! so the restore bench replays the *same* seeded stream with arrival
//! times compressed [`COMPRESSION`]× — order, tenancy and contention are
//! preserved, but the server becomes compute-bound and jobs/min compares
//! real work against cached reads.
//!
//! Two passes over one shared cluster:
//!
//! * **cold** — the cache starts empty. First occurrences of each of the
//!   13 SSB queries compute for real and fill the catalog; repeated
//!   submissions *within* the stream (the etl burst cycles queries the
//!   dash tenant also refires) already hit — that intra-stream sharing is
//!   the ReStore scenario and is reported, not hidden.
//! * **warm** — the identical stream replayed on the now-populated cache.
//!   Every stage should be a metadata-only cached read.
//!
//! The pass verifies byte-identity (warm rows must equal cold rows,
//! row-for-row) and reports throughput, per-tenant p99 and hit rates; the
//! committed `BENCH_restore.json` plus [`gate`] turn the warm speedup and
//! warm hit rate into CI floors.

use crate::workload::{self, Arrival, PolicyRun};
use clyde_common::{rowcodec, ClydeError, Obs, Result};
use clyde_dfs::CacheStats;
use clyde_mapred::SchedPolicy;
use std::sync::Arc;

/// Arrival-time compression for the replay (see module docs).
pub const COMPRESSION: f64 = 100.0;

/// Result-cache capacity for the bench cluster: generous enough that the
/// 13-query working set never faces eviction pressure (eviction behaviour
/// has its own engine tests).
pub const CACHE_CAPACITY_BYTES: u64 = 256 << 20;

/// Hard floor on warm/cold throughput (the acceptance bar; the gate also
/// holds the line at 0.9× the committed value).
pub const WARM_SPEEDUP_FLOOR: f64 = 2.0;

/// Hard floor on the warm pass's stage hit rate.
pub const WARM_HIT_RATE_FLOOR: f64 = 0.80;

/// One pass (cold or warm) of the compressed stream.
pub struct RestorePass {
    pub run: PolicyRun,
    /// Cache-catalog counter deltas attributable to this pass.
    pub stats: CacheStats,
}

impl RestorePass {
    /// Stage hit rate over this pass's cache lookups.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.stats.hits + self.stats.misses;
        if lookups == 0 {
            0.0
        } else {
            self.stats.hits as f64 / lookups as f64
        }
    }
}

/// The full cold-then-warm measurement.
pub struct RestoreReport {
    pub sf: f64,
    pub seed: u64,
    pub cold: RestorePass,
    pub warm: RestorePass,
}

impl RestoreReport {
    /// Warm throughput over cold throughput — the headline number.
    pub fn warm_speedup(&self) -> f64 {
        self.warm.run.throughput_jobs_per_min / self.cold.run.throughput_jobs_per_min.max(1e-9)
    }
}

/// The seeded stream with arrival times compressed `COMPRESSION`×.
pub fn compressed_scenario(seed: u64) -> Vec<Arrival> {
    let mut arrivals = workload::scenario(seed);
    for a in &mut arrivals {
        a.arrival_s /= COMPRESSION;
    }
    arrivals
}

/// Replay the compressed stream cold then warm on one shared cluster
/// (fair scheduling, result cache on) and verify warm rows are
/// byte-identical to cold rows before reporting anything.
pub fn run(
    sf: f64,
    seed: u64,
    obs: Option<Arc<Obs>>,
    host_threads: Option<u32>,
) -> Result<RestoreReport> {
    let clyde = workload::build_clyde(sf, seed, obs, host_threads)?;
    let dfs = clyde.engine().dfs();
    dfs.cache_configure(CACHE_CAPACITY_BYTES);
    let arrivals = compressed_scenario(seed);

    let before = dfs.cache_stats();
    let cold_run = workload::run_policy(&clyde, &arrivals, SchedPolicy::Fair)?;
    let mid = dfs.cache_stats();
    let warm_run = workload::run_policy(&clyde, &arrivals, SchedPolicy::Fair)?;
    let after = dfs.cache_stats();

    // Cached ≡ recomputed, byte-for-byte, before any number is reported.
    if cold_run.served.len() != warm_run.served.len() {
        return Err(ClydeError::MapReduce(format!(
            "restore replay drift: cold served {} jobs, warm served {}",
            cold_run.served.len(),
            warm_run.served.len()
        )));
    }
    for (c, w) in cold_run.served.iter().zip(&warm_run.served) {
        if c.tenant != w.tenant || c.query_id != w.query_id {
            return Err(ClydeError::MapReduce(format!(
                "restore replay drift: cold {}:{} vs warm {}:{}",
                c.tenant, c.query_id, w.tenant, w.query_id
            )));
        }
        if rowcodec::write_rows(&c.rows) != rowcodec::write_rows(&w.rows) {
            return Err(ClydeError::MapReduce(format!(
                "cached result is not byte-identical to the recomputed one: \
                 {} {} diverged on the warm pass",
                w.tenant, w.query_id
            )));
        }
    }

    Ok(RestoreReport {
        sf,
        seed,
        cold: RestorePass {
            run: cold_run,
            stats: mid.delta_since(&before),
        },
        warm: RestorePass {
            run: warm_run,
            stats: after.delta_since(&mid),
        },
    })
}

/// Human-readable report (also the CI artifact).
pub fn render_report(report: &RestoreReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "restore cold/warm replay: {} jobs, SF {}, seed {}, arrivals compressed {}x\n\n",
        report.cold.run.served.len(),
        report.sf,
        report.seed,
        COMPRESSION
    ));
    out.push_str(&format!(
        "{:<6} {:>10} {:>9} {:>6} {:>6} {:>9}   {:<7} {:>9}\n",
        "pass", "makespan", "jobs/min", "hits", "miss", "hit-rate", "tenant", "p99(s)"
    ));
    for (name, pass) in [("cold", &report.cold), ("warm", &report.warm)] {
        for (i, t) in pass.run.tenants.iter().enumerate() {
            let head = if i == 0 {
                format!(
                    "{:<6} {:>10.1} {:>9.2} {:>6} {:>6} {:>9.2}",
                    name,
                    pass.run.makespan_s,
                    pass.run.throughput_jobs_per_min,
                    pass.stats.hits,
                    pass.stats.misses,
                    pass.hit_rate()
                )
            } else {
                format!(
                    "{:<6} {:>10} {:>9} {:>6} {:>6} {:>9}",
                    "", "", "", "", "", ""
                )
            };
            out.push_str(&format!("{head}   {:<7} {:>9.2}\n", t.tenant, t.p99_s));
        }
    }
    out.push_str(&format!(
        "\nwarm speedup: {:.2}x (floor {WARM_SPEEDUP_FLOOR}x), \
         warm hit rate: {:.2} (floor {WARM_HIT_RATE_FLOOR})\n",
        report.warm_speedup(),
        report.warm.hit_rate()
    ));
    out
}

/// Serialize as the committed-gate JSON document (hand-rolled like the
/// workload bench — no serde in this workspace; see `BENCH_restore.json`).
pub fn to_json(report: &RestoreReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"sf\": {},\n  \"seed\": {},\n  \"jobs\": {},\n  \"compression\": {},\n",
        report.sf,
        report.seed,
        report.cold.run.served.len(),
        COMPRESSION
    ));
    out.push_str(&format!(
        "  \"floors\": {{ \"warm_speedup\": {WARM_SPEEDUP_FLOOR:.2}, \
         \"warm_hit_rate\": {WARM_HIT_RATE_FLOOR:.2} }},\n"
    ));
    out.push_str(&format!(
        "  \"summary\": {{ \"warm_speedup\": {:.2}, \"warm_hit_rate\": {:.2} }},\n",
        report.warm_speedup(),
        report.warm.hit_rate()
    ));
    out.push_str("  \"passes\": {\n");
    for (i, (name, pass)) in [("cold", &report.cold), ("warm", &report.warm)]
        .into_iter()
        .enumerate()
    {
        out.push_str(&format!(
            "    \"{name}\": {{\n      \"makespan_s\": {:.2},\n      \
             \"throughput_jobs_per_min\": {:.2},\n      \"hits\": {},\n      \
             \"misses\": {},\n      \"hit_rate\": {:.2},\n      \
             \"bytes_served\": {},\n      \"tenants\": {{\n",
            pass.run.makespan_s,
            pass.run.throughput_jobs_per_min,
            pass.stats.hits,
            pass.stats.misses,
            pass.hit_rate(),
            pass.stats.bytes_served
        ));
        for (j, t) in pass.run.tenants.iter().enumerate() {
            let comma = if j + 1 < pass.run.tenants.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "        \"{}\": {{ \"jobs\": {}, \"p99_s\": {:.2} }}{comma}\n",
                t.tenant, t.jobs, t.p99_s
            ));
        }
        let comma = if i == 0 { "," } else { "" };
        out.push_str(&format!("      }}\n    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// The CI restore gate. Fails (returns every violation) if:
///
/// 1. the warm speedup falls below the hard `2.0x` floor,
/// 2. the warm speedup falls below `0.9x` its committed value, or
/// 3. the warm hit rate falls below the `0.80` floor.
///
/// Everything is simulated, so a healthy tree reproduces the committed
/// numbers exactly; the 10% band only absorbs intentional cost
/// recalibrations, not noise.
pub fn gate(report: &RestoreReport, committed: &str) -> std::result::Result<(), Vec<String>> {
    let mut violations = Vec::new();
    let speedup = report.warm_speedup();
    let hit_rate = report.warm.hit_rate();
    if speedup >= WARM_SPEEDUP_FLOOR {
        eprintln!("gate warm speedup: {speedup:.2}x >= hard floor {WARM_SPEEDUP_FLOOR}x — ok");
    } else {
        violations.push(format!(
            "warm speedup {speedup:.2}x fell below the hard floor {WARM_SPEEDUP_FLOOR}x"
        ));
    }
    match workload::recorded_number(committed, "summary", "warm_speedup") {
        Some(recorded) => {
            let floor = recorded * 0.9;
            if speedup >= floor {
                eprintln!(
                    "gate warm speedup: {speedup:.2}x vs recorded {recorded:.2}x \
                     (floor {floor:.2}x) — ok"
                );
            } else {
                violations.push(format!(
                    "warm speedup {speedup:.2}x fell below floor {floor:.2}x \
                     (recorded {recorded:.2}x)"
                ));
            }
        }
        None => violations.push("committed gate has no summary.warm_speedup".into()),
    }
    if hit_rate >= WARM_HIT_RATE_FLOOR {
        eprintln!("gate warm hit rate: {hit_rate:.2} >= floor {WARM_HIT_RATE_FLOOR} — ok");
    } else {
        violations.push(format!(
            "warm hit rate {hit_rate:.2} fell below the floor {WARM_HIT_RATE_FLOOR}"
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_scenario_preserves_order_and_shape() {
        let orig = workload::scenario(46);
        let fast = compressed_scenario(46);
        assert_eq!(orig.len(), fast.len());
        for (o, f) in orig.iter().zip(&fast) {
            assert_eq!(o.tenant, f.tenant);
            assert_eq!(o.query_id, f.query_id);
            assert!((f.arrival_s - o.arrival_s / COMPRESSION).abs() < 1e-12);
        }
        assert!(fast.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }

    #[test]
    fn gate_reads_the_committed_summary() {
        let json = "{ \"summary\": { \"warm_speedup\": 10.00, \"warm_hit_rate\": 1.00 } }";
        assert_eq!(
            workload::recorded_number(json, "summary", "warm_speedup"),
            Some(10.0)
        );
    }
}
