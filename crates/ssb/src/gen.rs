//! Deterministic SSB data generator (`dbgen` equivalent).
//!
//! Cardinalities follow the SSB specification:
//!
//! * `lineorder` — 6,000,000 × SF
//! * `customer`  — 30,000 × SF
//! * `supplier`  — 2,000 × SF
//! * `part`      — 200,000 × (1 + ⌊log₂ SF⌋) for SF ≥ 1
//! * `date`      — one row per day of 1992-01-01 .. 1998-12-31
//!
//! Fractional scale factors (used by tests and laptop-scale benchmarks)
//! scale the linear tables proportionally. Generation is a pure function of
//! `(sf, seed)`; the same inputs always produce byte-identical tables, which
//! the determinism tests rely on.

use crate::schema;
use clyde_common::{row, Datum, Result, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Days from 1992-01-01 through 1998-12-31 (two leap years: 1992, 1996).
pub const NUM_DATES: usize = 2557;

const COLORS: [&str; 12] = [
    "almond", "aqua", "azure", "beige", "blue", "brown", "coral", "cyan", "forest", "green",
    "ivory", "plum",
];
const TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BRUSHED",
    "ECONOMY BURNISHED",
    "PROMO ANODIZED",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Gregorian calendar helpers for the SSB date range.
pub mod calendar {
    /// Is `year` a leap year?
    pub fn is_leap(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    pub fn days_in_month(year: i32, month: u32) -> u32 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if is_leap(year) => 29,
            2 => 28,
            _ => unreachable!("month out of range"),
        }
    }

    /// (year, month, day, day-of-year) for a day index counted from
    /// 1992-01-01 (index 0).
    pub fn from_day_index(mut idx: u32) -> (i32, u32, u32, u32) {
        let mut year = 1992;
        loop {
            let ydays = if is_leap(year) { 366 } else { 365 };
            if idx < ydays {
                break;
            }
            idx -= ydays;
            year += 1;
        }
        let day_of_year = idx + 1;
        let mut month = 1;
        let mut rem = idx;
        loop {
            let mdays = days_in_month(year, month);
            if rem < mdays {
                return (year, month, rem + 1, day_of_year);
            }
            rem -= mdays;
            month += 1;
        }
    }

    /// `yyyymmdd` integer key for a day index.
    pub fn datekey(idx: u32) -> i32 {
        let (y, m, d, _) = from_day_index(idx);
        y * 10_000 + (m as i32) * 100 + d as i32
    }
}

/// The generator: a pure function of scale factor and seed.
#[derive(Debug, Clone, Copy)]
pub struct SsbGen {
    pub sf: f64,
    pub seed: u64,
}

fn scaled(base: u64, sf: f64) -> usize {
    (((base as f64) * sf).round() as usize).max(1)
}

impl SsbGen {
    pub fn new(sf: f64, seed: u64) -> SsbGen {
        SsbGen { sf, seed }
    }

    pub fn num_customers(&self) -> usize {
        scaled(30_000, self.sf)
    }

    pub fn num_suppliers(&self) -> usize {
        scaled(2_000, self.sf)
    }

    pub fn num_parts(&self) -> usize {
        if self.sf >= 1.0 {
            200_000 * (1 + self.sf.log2().floor() as usize)
        } else {
            scaled(200_000, self.sf)
        }
    }

    pub fn num_dates(&self) -> usize {
        NUM_DATES
    }

    pub fn num_lineorders(&self) -> usize {
        scaled(6_000_000, self.sf)
    }

    /// Cardinality of a table by name (used by the SF extrapolator).
    pub fn cardinality(&self, table: &str) -> usize {
        match table {
            schema::LINEORDER => self.num_lineorders(),
            schema::CUSTOMER => self.num_customers(),
            schema::SUPPLIER => self.num_suppliers(),
            schema::PART => self.num_parts(),
            schema::DATE => self.num_dates(),
            _ => 0,
        }
    }

    fn rng_for(&self, table: &str) -> StdRng {
        let mut mix = self.seed;
        for b in table.bytes() {
            mix = mix.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
        }
        StdRng::seed_from_u64(mix)
    }

    /// The `date` dimension (fixed 7-year calendar).
    pub fn gen_date(&self) -> Vec<Row> {
        let months = schema::MONTHS;
        (0..NUM_DATES as u32)
            .map(|idx| {
                let (y, m, d, doy) = calendar::from_day_index(idx);
                let (month_name, month_abbr) = months[(m - 1) as usize];
                let day_in_week = (idx % 7) as i32 + 1; // 1992-01-01 = day 1
                let season = match m {
                    12 => "Christmas",
                    1 | 2 => "Winter",
                    3..=5 => "Spring",
                    6..=8 => "Summer",
                    _ => "Fall",
                };
                row![
                    calendar::datekey(idx),
                    format!("{month_name} {d}, {y}"),
                    schema::DAYS_OF_WEEK[(idx % 7) as usize],
                    month_name,
                    y,
                    y * 100 + m as i32,
                    format!("{month_abbr}{y}"),
                    day_in_week,
                    doy as i32,
                    ((doy - 1) / 7 + 1) as i32,
                    season
                ]
            })
            .collect()
    }

    /// The `customer` dimension.
    pub fn gen_customer(&self) -> Vec<Row> {
        let mut rng = self.rng_for(schema::CUSTOMER);
        (1..=self.num_customers() as i32)
            .map(|key| {
                let (nation, region_idx) = schema::NATIONS[rng.gen_range(0..25usize)];
                let city = schema::city_name(nation, rng.gen_range(0..10));
                row![
                    key,
                    format!("Customer#{key:09}"),
                    random_address(&mut rng),
                    city,
                    nation,
                    schema::REGIONS[region_idx],
                    random_phone(&mut rng, region_idx),
                    SEGMENTS[rng.gen_range(0..SEGMENTS.len())]
                ]
            })
            .collect()
    }

    /// The `supplier` dimension.
    pub fn gen_supplier(&self) -> Vec<Row> {
        let mut rng = self.rng_for(schema::SUPPLIER);
        (1..=self.num_suppliers() as i32)
            .map(|key| {
                let (nation, region_idx) = schema::NATIONS[rng.gen_range(0..25usize)];
                let city = schema::city_name(nation, rng.gen_range(0..10));
                row![
                    key,
                    format!("Supplier#{key:09}"),
                    random_address(&mut rng),
                    city,
                    nation,
                    schema::REGIONS[region_idx],
                    random_phone(&mut rng, region_idx)
                ]
            })
            .collect()
    }

    /// The `part` dimension.
    pub fn gen_part(&self) -> Vec<Row> {
        let mut rng = self.rng_for(schema::PART);
        (1..=self.num_parts() as i32)
            .map(|key| {
                let mfgr_num = rng.gen_range(1..=schema::MFGRS);
                let cat_num = rng.gen_range(1..=schema::CATEGORIES_PER_MFGR);
                let brand_num = rng.gen_range(1..=schema::BRANDS_PER_CATEGORY);
                let mfgr = format!("MFGR#{mfgr_num}");
                let category = format!("MFGR#{mfgr_num}{cat_num}");
                let brand1 = format!("{category}{brand_num}");
                let color = COLORS[rng.gen_range(0..COLORS.len())];
                row![
                    key,
                    format!("{} {}", color, COLORS[rng.gen_range(0..COLORS.len())]),
                    mfgr,
                    category,
                    brand1,
                    color,
                    TYPES[rng.gen_range(0..TYPES.len())],
                    rng.gen_range(1..=50i32),
                    CONTAINERS[rng.gen_range(0..CONTAINERS.len())]
                ]
            })
            .collect()
    }

    /// Stream the `lineorder` fact table row by row without materializing it.
    ///
    /// Rows come in orders of 1–7 lines sharing order key, customer, date,
    /// and priority, exactly like `dbgen`'s order structure.
    pub fn for_each_lineorder(&self, mut f: impl FnMut(&Row) -> Result<()>) -> Result<()> {
        let mut rng = self.rng_for(schema::LINEORDER);
        let customers = self.num_customers() as i32;
        let suppliers = self.num_suppliers() as i32;
        let parts = self.num_parts() as i32;
        let target = self.num_lineorders();
        let priorities: Vec<Arc<str>> = schema::PRIORITIES.iter().map(|s| Arc::from(*s)).collect();
        let modes: Vec<Arc<str>> = schema::SHIP_MODES.iter().map(|s| Arc::from(*s)).collect();

        let mut produced = 0usize;
        let mut orderkey = 0i32;
        while produced < target {
            orderkey += 1;
            let lines = rng.gen_range(1..=7usize).min(target - produced);
            let custkey = rng.gen_range(1..=customers);
            let orderdate_idx = rng.gen_range(0..NUM_DATES as u32);
            let orderdate = calendar::datekey(orderdate_idx);
            let priority = Arc::clone(&priorities[rng.gen_range(0..priorities.len())]);
            let mut ordtotal = 0i64;
            let mut line_data = Vec::with_capacity(lines);
            for _ in 0..lines {
                let quantity = rng.gen_range(1..=50i32);
                let unit_price = rng.gen_range(900..=10_500i32);
                let extendedprice = quantity * unit_price;
                ordtotal += i64::from(extendedprice);
                line_data.push((quantity, extendedprice));
            }
            let ordtotalprice = ordtotal.min(i64::from(i32::MAX)) as i32;
            for (linenumber, (quantity, extendedprice)) in line_data.into_iter().enumerate() {
                let partkey = rng.gen_range(1..=parts);
                let suppkey = rng.gen_range(1..=suppliers);
                let discount = rng.gen_range(0..=10i32);
                let tax = rng.gen_range(0..=8i32);
                let revenue = extendedprice * (100 - discount) / 100;
                let supplycost = extendedprice * 6 / 10;
                let commit_idx =
                    (orderdate_idx + rng.gen_range(30..=90u32)).min(NUM_DATES as u32 - 1);
                let r = Row::new(vec![
                    Datum::I32(orderkey),
                    Datum::I32(linenumber as i32 + 1),
                    Datum::I32(custkey),
                    Datum::I32(partkey),
                    Datum::I32(suppkey),
                    Datum::I32(orderdate),
                    Datum::Str(Arc::clone(&priority)),
                    Datum::I32(0),
                    Datum::I32(quantity),
                    Datum::I32(extendedprice),
                    Datum::I32(ordtotalprice),
                    Datum::I32(discount),
                    Datum::I32(revenue),
                    Datum::I32(supplycost),
                    Datum::I32(tax),
                    Datum::I32(calendar::datekey(commit_idx)),
                    Datum::Str(Arc::clone(&modes[rng.gen_range(0..modes.len())])),
                ]);
                f(&r)?;
                produced += 1;
            }
        }
        Ok(())
    }

    /// Materialize the full dataset (tests and the reference executor).
    pub fn gen_all(&self) -> SsbData {
        let mut lineorder = Vec::with_capacity(self.num_lineorders());
        self.for_each_lineorder(|r| {
            lineorder.push(r.clone());
            Ok(())
        })
        .expect("in-memory generation cannot fail");
        SsbData {
            customer: self.gen_customer(),
            supplier: self.gen_supplier(),
            part: self.gen_part(),
            date: self.gen_date(),
            lineorder,
        }
    }
}

/// A fully materialized SSB dataset.
#[derive(Debug, Clone)]
pub struct SsbData {
    pub customer: Vec<Row>,
    pub supplier: Vec<Row>,
    pub part: Vec<Row>,
    pub date: Vec<Row>,
    pub lineorder: Vec<Row>,
}

impl SsbData {
    /// Dimension rows by table name.
    pub fn dimension(&self, table: &str) -> Option<&[Row]> {
        match table {
            schema::CUSTOMER => Some(&self.customer),
            schema::SUPPLIER => Some(&self.supplier),
            schema::PART => Some(&self.part),
            schema::DATE => Some(&self.date),
            _ => None,
        }
    }
}

fn random_address(rng: &mut StdRng) -> String {
    let len = rng.gen_range(10..25);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn random_phone(rng: &mut StdRng, region: usize) -> String {
    format!(
        "{}{}-{:03}-{:03}-{:04}",
        region + 1,
        rng.gen_range(0..10),
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::FxHashSet;

    #[test]
    fn calendar_basics() {
        assert!(calendar::is_leap(1992));
        assert!(calendar::is_leap(1996));
        assert!(!calendar::is_leap(1994));
        assert_eq!(calendar::from_day_index(0), (1992, 1, 1, 1));
        assert_eq!(calendar::from_day_index(31), (1992, 2, 1, 32));
        assert_eq!(calendar::from_day_index(365), (1992, 12, 31, 366));
        assert_eq!(calendar::from_day_index(366), (1993, 1, 1, 1));
        assert_eq!(
            calendar::from_day_index(NUM_DATES as u32 - 1),
            (1998, 12, 31, 365)
        );
        assert_eq!(calendar::datekey(0), 19920101);
        assert_eq!(calendar::datekey(NUM_DATES as u32 - 1), 19981231);
    }

    #[test]
    fn cardinalities_follow_ssb_scaling() {
        let g1 = SsbGen::new(1.0, 7);
        assert_eq!(g1.num_customers(), 30_000);
        assert_eq!(g1.num_suppliers(), 2_000);
        assert_eq!(g1.num_parts(), 200_000);
        assert_eq!(g1.num_lineorders(), 6_000_000);
        assert_eq!(g1.num_dates(), 2557);

        let g1000 = SsbGen::new(1000.0, 7);
        assert_eq!(g1000.num_customers(), 30_000_000);
        assert_eq!(g1000.num_parts(), 200_000 * 10); // 1 + floor(log2 1000) = 10
        assert_eq!(g1000.num_dates(), 2557); // date never scales

        let tiny = SsbGen::new(0.001, 7);
        assert_eq!(tiny.num_lineorders(), 6_000);
        assert_eq!(tiny.num_customers(), 30);
        assert_eq!(tiny.cardinality(schema::PART), 200);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SsbGen::new(0.002, 42).gen_all();
        let b = SsbGen::new(0.002, 42).gen_all();
        assert_eq!(a.customer, b.customer);
        assert_eq!(a.lineorder, b.lineorder);
        // A different seed produces different data.
        let c = SsbGen::new(0.002, 43).gen_all();
        assert_ne!(a.lineorder, c.lineorder);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let g = SsbGen::new(0.002, 11);
        let data = g.gen_all();
        let datekeys: FxHashSet<i64> = data
            .date
            .iter()
            .map(|r| r.at(0).as_i64().unwrap())
            .collect();
        let nc = data.customer.len() as i64;
        let ns = data.supplier.len() as i64;
        let np = data.part.len() as i64;
        assert_eq!(data.lineorder.len(), g.num_lineorders());
        for lo in &data.lineorder {
            let ck = lo.at(2).as_i64().unwrap();
            let pk = lo.at(3).as_i64().unwrap();
            let sk = lo.at(4).as_i64().unwrap();
            let od = lo.at(5).as_i64().unwrap();
            assert!(ck >= 1 && ck <= nc);
            assert!(pk >= 1 && pk <= np);
            assert!(sk >= 1 && sk <= ns);
            assert!(datekeys.contains(&od), "orderdate {od} not in calendar");
            assert!(datekeys.contains(&lo.at(15).as_i64().unwrap()));
        }
    }

    #[test]
    fn measures_respect_domains() {
        let data = SsbGen::new(0.001, 3).gen_all();
        for lo in &data.lineorder {
            let quantity = lo.at(8).as_i32().unwrap();
            let ext = lo.at(9).as_i32().unwrap();
            let discount = lo.at(11).as_i32().unwrap();
            let revenue = lo.at(12).as_i32().unwrap();
            assert!((1..=50).contains(&quantity));
            assert!((0..=10).contains(&discount));
            assert_eq!(revenue, ext * (100 - discount) / 100);
            assert!(lo.at(13).as_i32().unwrap() > 0); // supplycost
        }
    }

    #[test]
    fn orders_group_lines() {
        let data = SsbGen::new(0.001, 3).gen_all();
        // Line numbers restart at 1 for each order and increment.
        let mut prev_order = 0i32;
        let mut prev_line = 0i32;
        for lo in &data.lineorder {
            let ok = lo.at(0).as_i32().unwrap();
            let ln = lo.at(1).as_i32().unwrap();
            if ok != prev_order {
                assert_eq!(ln, 1, "order {ok} does not start at line 1");
                prev_order = ok;
            } else {
                assert_eq!(ln, prev_line + 1);
            }
            prev_line = ln;
        }
    }

    #[test]
    fn rows_match_schemas() {
        let data = SsbGen::new(0.001, 5).gen_all();
        for r in data.customer.iter().take(20) {
            schema::customer_schema().check_row(r).unwrap();
        }
        for r in data.part.iter().take(20) {
            schema::part_schema().check_row(r).unwrap();
        }
        for r in data.date.iter().take(20) {
            schema::date_schema().check_row(r).unwrap();
        }
        for r in data.supplier.iter().take(20) {
            schema::supplier_schema().check_row(r).unwrap();
        }
        for r in data.lineorder.iter().take(20) {
            schema::lineorder_schema().check_row(r).unwrap();
        }
    }

    #[test]
    fn streaming_matches_collected() {
        let g = SsbGen::new(0.001, 9);
        let collected = g.gen_all().lineorder;
        let mut streamed = Vec::new();
        g.for_each_lineorder(|r| {
            streamed.push(r.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(collected, streamed);
    }

    #[test]
    fn predicate_selectivities_are_plausible() {
        // The SSB queries rely on these domains: check rough selectivity of
        // Q1.1's fact predicates (discount 1..3 ≈ 3/11, quantity < 25 ≈ 24/50).
        let data = SsbGen::new(0.01, 1).gen_all();
        let n = data.lineorder.len() as f64;
        let selected = data
            .lineorder
            .iter()
            .filter(|lo| {
                let d = lo.at(11).as_i32().unwrap();
                let q = lo.at(8).as_i32().unwrap();
                (1..=3).contains(&d) && q < 25
            })
            .count() as f64;
        let expected = (3.0 / 11.0) * (24.0 / 50.0);
        assert!((selected / n - expected).abs() < 0.05);
    }
}
