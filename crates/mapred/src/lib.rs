//! An in-process MapReduce engine with Hadoop's extensibility points.
//!
//! Section 3 of the Clydesdale paper enumerates the Hadoop features the
//! system is built on, and this crate reproduces each of them:
//!
//! * **InputFormats** ([`input::InputFormat`]) that generate locality-tagged
//!   splits and construct record/block readers;
//! * **MapRunners** ([`runner::MapRunner`]) that own the map-side loop, so
//!   Clydesdale can substitute its multi-threaded `MTMapRunner` without any
//!   framework change;
//! * **pluggable scheduling** ([`scheduler`]) with locality-aware slot
//!   assignment and the capacity-scheduler behaviour of admitting only one
//!   high-memory task per node (paper Section 5.2);
//! * **JVM reuse** ([`task::NodeState`]): per-node state that survives across
//!   consecutive tasks of a job, which is how dimension hash tables are built
//!   exactly once per node;
//! * the **distributed cache** ([`distcache::DistCache`]) used by Hive's
//!   mapjoin to broadcast serialized hash tables;
//! * a sort-based **shuffle** ([`shuffle`]) with combiner support, keyed by
//!   the order-preserving codec from `clyde-common`.
//!
//! Jobs really execute — multi-threaded, one worker thread per simulated
//! node — and additionally produce a [`job::JobProfile`] of counters which
//! the deterministic [`cost`] model prices against a cluster specification
//! to yield the simulated runtimes behind the paper's figures.

pub mod conf;
pub mod cost;
pub mod distcache;
pub mod engine;
pub mod fault;
pub mod fingerprint;
pub mod formats;
pub mod history;
pub mod input;
pub mod job;
pub mod runner;
pub mod scheduler;
pub mod server;
pub mod shuffle;
pub mod task;

pub use conf::JobConf;
pub use cost::{CostParams, JobCost, TaskCost};
pub use distcache::DistCache;
pub use engine::Engine;
pub use fault::{DatanodeDeath, FaultPlan};
pub use fingerprint::{job_fingerprint, Fingerprinter};
pub use history::job_history;
pub use input::{BlockReader, InputFormat, InputSplit, Reader, RecordReader, SplitSpec};
pub use job::{
    Extrapolation, JobProfile, JobResult, JobSpec, KilledAttempt, MapTaskScaling, OutputSpec,
    TaskProfile,
};
pub use runner::{FnMapRunner, MapRunner, RowMapRunner};
pub use scheduler::SchedPolicy;
pub use server::{JobServer, RejectReason, ServedJob, ServerConfig};
pub use shuffle::Reducer;
pub use task::{Collector, MapTaskContext, NodeState, TaskIo};
