//! Micro-benchmarks of the star-join building blocks (real wall clock):
//! dimension hash-table build rate, block probe vs row-at-a-time probe
//! (Section 5.3's block-iteration claim, measured on this implementation),
//! and the early-out effect of probe ordering.

use clyde_common::{FxHashMap, Row, RowBlockBuilder, Schema};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::queries::query_by_id;
use clyde_ssb::schema;
use clydesdale::probe::{
    probe_block, probe_block_vec, probe_row, GroupAcc, GroupLayout, ProbePlan, ProbeStats, SelBuf,
};
use clydesdale::{DimHashTable, DimTables};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SF: f64 = 0.02; // 120 K fact rows

struct Fixture {
    data: clyde_ssb::SsbData,
    plan: ProbePlan,
    plan_part_first: ProbePlan,
    tables: DimTables,
    tables_part_first: DimTables,
    block: clyde_common::RowBlock,
    rows: Vec<Row>,
    scan_schema: Schema,
}

fn fixture() -> Fixture {
    let data = SsbGen::new(SF, 46).gen_all();
    let q = query_by_id("Q2.1").unwrap();
    let mut q_part_first = q.clone();
    q_part_first.joins.rotate_left(1); // part, supplier, date

    let fact = schema::lineorder_schema();
    let cols: Vec<usize> = q
        .fact_columns()
        .iter()
        .map(|c| fact.index_of(c).unwrap())
        .collect();
    let scan_schema = fact.project(&cols);

    let fetch = |dim: &str| Ok(data.dimension(dim).unwrap().to_vec());
    let tables = DimTables::build_all(&q.joins, fetch).unwrap();
    let tables_part_first = DimTables::build_all(&q_part_first.joins, fetch).unwrap();

    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    let mut builder = RowBlockBuilder::new(&dtypes);
    let mut rows = Vec::with_capacity(data.lineorder.len());
    for lo in &data.lineorder {
        let projected = lo.project(&cols);
        builder.push_row(&projected).unwrap();
        rows.push(projected);
    }
    Fixture {
        plan: ProbePlan::compile(&q, &scan_schema).unwrap(),
        plan_part_first: ProbePlan::compile(&q_part_first, &scan_schema).unwrap(),
        block: builder.finish(),
        rows,
        tables,
        tables_part_first,
        scan_schema,
        data,
    }
}

fn bench_build(c: &mut Criterion) {
    let f = fixture();
    let q = query_by_id("Q3.1").unwrap();
    let customer = &q.joins[0];
    let mut group = c.benchmark_group("hash_build");
    group.throughput(Throughput::Elements(f.data.customer.len() as u64));
    group.bench_function("customer_region_filtered", |b| {
        b.iter(|| {
            DimHashTable::build(customer, &f.data.customer)
                .unwrap()
                .len()
        });
    });
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    let f = fixture();
    let n = f.block.len() as u64;
    let mut group = c.benchmark_group("probe_q21");
    group.throughput(Throughput::Elements(n));

    group.bench_function(BenchmarkId::new("block_iteration", "on"), |b| {
        b.iter(|| {
            let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
            let mut stats = ProbeStats::default();
            probe_block(&f.block, &f.plan, &f.tables, &mut acc, &mut stats).unwrap();
            acc.len()
        });
    });

    group.bench_function(BenchmarkId::new("kernel", "vectorized (default)"), |b| {
        let layout = GroupLayout::new(&f.plan, &f.tables).unwrap();
        b.iter(|| {
            let mut acc = GroupAcc::new(&layout, &f.plan.aggregate);
            let mut buf = SelBuf::default();
            let mut stats = ProbeStats::default();
            probe_block_vec(
                &f.block, &f.plan, &f.tables, &layout, &mut acc, &mut buf, &mut stats,
            )
            .unwrap();
            stats.survivors
        });
    });

    group.bench_function(
        BenchmarkId::new("block_iteration", "off (row-at-a-time)"),
        |b| {
            b.iter(|| {
                let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
                let mut stats = ProbeStats::default();
                for r in &f.rows {
                    probe_row(r, &f.plan, &f.tables, &mut acc, &mut stats).unwrap();
                }
                acc.len()
            });
        },
    );

    // Early-out: probing the selective dimension (part, 1/25) first skips
    // most later probes.
    group.bench_function(
        BenchmarkId::new("join_order", "date_first (sql order)"),
        |b| {
            b.iter(|| {
                let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
                let mut stats = ProbeStats::default();
                probe_block(&f.block, &f.plan, &f.tables, &mut acc, &mut stats).unwrap();
                stats.probes
            });
        },
    );
    group.bench_function(
        BenchmarkId::new("join_order", "part_first (selective)"),
        |b| {
            b.iter(|| {
                let mut acc: FxHashMap<Row, i64> = FxHashMap::default();
                let mut stats = ProbeStats::default();
                probe_block(
                    &f.block,
                    &f.plan_part_first,
                    &f.tables_part_first,
                    &mut acc,
                    &mut stats,
                )
                .unwrap();
                stats.probes
            });
        },
    );
    group.finish();
    let _ = &f.scan_schema;
}

criterion_group!(benches, bench_build, bench_probe);
criterion_main!(benches);
