//! LEB128 variable-length integer encoding.
//!
//! Used by the storage formats (`clyde-columnar`) for lengths and dictionary
//! codes, where most values are small and a fixed 4-byte width would waste
//! I/O — which matters, because scan bandwidth is exactly what the paper's
//! columnar layout is trying to conserve.

use crate::error::{ClydeError, Result};

/// Append `v` to `out` as unsigned LEB128.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` to `out` as zigzag-coded signed LEB128.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Decode an unsigned LEB128 value from `buf` starting at `*pos`, advancing
/// `*pos` past it.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| ClydeError::Format("varint: unexpected end of buffer".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(ClydeError::Format("varint: overflow".into()));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Decode a zigzag-coded signed LEB128 value.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(read_u64(buf, pos)?))
}

/// Encoded length in bytes of `v` as unsigned LEB128.
pub fn encoded_len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 2);
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 0);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 127);
        assert_eq!(pos, 2);
    }

    #[test]
    fn boundary_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len_u64(v));
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn signed_boundaries() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63, -65, 64] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        assert!(read_u64(&[], &mut 0).is_err());
    }

    #[test]
    fn malformed_overlong_varint_errors() {
        // 11 continuation bytes exceed the 64-bit shift budget.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_u64(v: u64) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(buf.len(), encoded_len_u64(v));
        }

        #[test]
        fn roundtrip_i64(v: i64) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }

        #[test]
        fn sequences_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_u64(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &vs {
                prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
