//! The sort-based shuffle: partitioning, sorting, combining, grouping.
//!
//! Map outputs are (encoded key, value) pairs. The shuffle partitions them by
//! key hash, sorts each partition by key bytes (which, thanks to the
//! order-preserving codec, equals logical key order), optionally runs a
//! combiner map-side, and groups runs of equal keys for the reducer — the
//! same mechanics Hadoop's map-side spill/merge implements.

use clyde_common::hash::FxHasher;
use clyde_common::{keycodec, Result, Row};
use std::hash::Hasher;

/// Reduce (and combine) function: all values of one key.
pub trait Reducer: Send + Sync {
    /// `key` is the decoded grouping key; `values` are that key's values in
    /// map-output order (stable sort). Emit output rows through `out`.
    fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()>;
}

/// A [`Reducer`] from a closure.
pub struct FnReducer<F>(pub F)
where
    F: Fn(&Row, &[Row], &mut Vec<Row>) -> Result<()> + Send + Sync;

impl<F> Reducer for FnReducer<F>
where
    F: Fn(&Row, &[Row], &mut Vec<Row>) -> Result<()> + Send + Sync,
{
    fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
        (self.0)(key, values, out)
    }
}

/// Hash-partition an encoded key among `partitions` reducers.
pub fn partition_of(key: &[u8], partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    let mut h = FxHasher::default();
    h.write(key);
    (h.finish() % partitions as u64) as usize
}

/// Sort records by key bytes (stable, preserving map-output value order
/// within a key — Hadoop's secondary-sortless semantics).
pub fn sort_records(records: &mut [(Vec<u8>, Row)]) {
    records.sort_by(|a, b| a.0.cmp(&b.0));
}

/// Apply a combiner to sorted records, producing (key, combined-value)
/// records. The combiner's output rows are re-emitted under the same key, so
/// combiners must be algebraic (e.g. partial sums), as in Hadoop.
pub fn combine_sorted(
    records: Vec<(Vec<u8>, Row)>,
    combiner: &dyn Reducer,
) -> Result<Vec<(Vec<u8>, Row)>> {
    let mut out: Vec<(Vec<u8>, Row)> = Vec::with_capacity(records.len() / 4 + 1);
    let mut scratch: Vec<Row> = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let j = run_end(&records, i);
        let key = keycodec::decode_row(&records[i].0)?;
        scratch.clear();
        scratch.extend(records[i..j].iter().map(|(_, v)| v.clone()));
        let mut combined = Vec::new();
        combiner.reduce(&key, &scratch, &mut combined)?;
        let encoded = &records[i].0;
        for row in combined {
            out.push((encoded.clone(), row));
        }
        i = j;
    }
    Ok(out)
}

/// Group sorted records and run the reducer over each key's values.
pub fn reduce_sorted(
    records: &[(Vec<u8>, Row)],
    reducer: &dyn Reducer,
    out: &mut Vec<Row>,
) -> Result<u64> {
    let mut groups = 0u64;
    let mut scratch: Vec<Row> = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let j = run_end(records, i);
        let key = keycodec::decode_row(&records[i].0)?;
        scratch.clear();
        scratch.extend(records[i..j].iter().map(|(_, v)| v.clone()));
        reducer.reduce(&key, &scratch, out)?;
        groups += 1;
        i = j;
    }
    Ok(groups)
}

/// Merge several sorted runs into one sorted run (the reduce-side merge of
/// map outputs). Stable across runs in run order, matching Hadoop's merge of
/// map outputs in task order.
pub fn merge_sorted_runs(mut runs: Vec<Vec<(Vec<u8>, Row)>>) -> Vec<(Vec<u8>, Row)> {
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().expect("len checked"),
        _ => {
            let total = runs.iter().map(Vec::len).sum();
            let mut out = Vec::with_capacity(total);
            // K is small (tasks per job); a simple linear k-way pick keeps
            // the merge stable and dependency-free.
            let mut cursors = vec![0usize; runs.len()];
            loop {
                let mut best: Option<usize> = None;
                for (r, run) in runs.iter().enumerate() {
                    if cursors[r] >= run.len() {
                        continue;
                    }
                    best = Some(match best {
                        None => r,
                        Some(b) if run[cursors[r]].0 < runs[b][cursors[b]].0 => r,
                        Some(b) => b,
                    });
                }
                match best {
                    None => break,
                    Some(r) => {
                        let (k, v) = runs[r][cursors[r]].clone();
                        out.push((k, v));
                        cursors[r] += 1;
                    }
                }
            }
            out
        }
    }
}

fn run_end(records: &[(Vec<u8>, Row)], start: usize) -> usize {
    let key = &records[start].0;
    let mut end = start + 1;
    while end < records.len() && &records[end].0 == key {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;
    use proptest::prelude::*;

    fn rec(k: i64, v: i64) -> (Vec<u8>, Row) {
        (keycodec::encode_row(&row![k]), row![v])
    }

    struct SumReducer;

    impl Reducer for SumReducer {
        fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
            let sum: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
            out.push(key.concat(&row![sum]));
            Ok(())
        }
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        for p in [1usize, 2, 7] {
            for k in 0..50i64 {
                let key = keycodec::encode_row(&row![k]);
                let a = partition_of(&key, p);
                assert_eq!(a, partition_of(&key, p));
                assert!(a < p);
            }
        }
    }

    #[test]
    fn partitions_spread_keys() {
        let mut seen = [false; 4];
        for k in 0..100i64 {
            seen[partition_of(&keycodec::encode_row(&row![k]), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn reduce_groups_equal_keys() {
        let mut records = vec![rec(2, 10), rec(1, 1), rec(2, 20), rec(1, 2), rec(3, 5)];
        sort_records(&mut records);
        let mut out = Vec::new();
        let groups = reduce_sorted(&records, &SumReducer, &mut out).unwrap();
        assert_eq!(groups, 3);
        assert_eq!(
            out,
            vec![row![1i64, 3i64], row![2i64, 30i64], row![3i64, 5i64]]
        );
    }

    #[test]
    fn combiner_preserves_final_sums() {
        let mut records = vec![rec(1, 1), rec(1, 2), rec(2, 10), rec(1, 4)];
        sort_records(&mut records);
        let combined = combine_sorted(records, &SumReducer).unwrap();
        // Combined: key1 -> (1, 7), key2 -> (2, 10); values carry key+sum per
        // SumReducer's output shape, so re-reduce over the sum column.
        assert_eq!(combined.len(), 2);
        struct Resummer;
        impl Reducer for Resummer {
            fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
                let sum: i64 = values.iter().map(|v| v.at(1).as_i64().unwrap()).sum();
                out.push(key.concat(&row![sum]));
                Ok(())
            }
        }
        let mut out = Vec::new();
        reduce_sorted(&combined, &Resummer, &mut out).unwrap();
        assert_eq!(out, vec![row![1i64, 7i64], row![2i64, 10i64]]);
    }

    #[test]
    fn merge_is_sorted_and_complete() {
        let mut a = vec![rec(1, 1), rec(3, 3), rec(5, 5)];
        let mut b = vec![rec(2, 2), rec(3, 33)];
        sort_records(&mut a);
        sort_records(&mut b);
        let merged = merge_sorted_runs(vec![a, b]);
        assert_eq!(merged.len(), 5);
        assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
        // Stability: run 0's (3,3) precedes run 1's (3,33).
        let threes: Vec<i64> = merged
            .iter()
            .filter(|(k, _)| *k == keycodec::encode_row(&row![3i64]))
            .map(|(_, v)| v.at(0).as_i64().unwrap())
            .collect();
        assert_eq!(threes, vec![3, 33]);
    }

    #[test]
    fn merge_edge_cases() {
        assert!(merge_sorted_runs(vec![]).is_empty());
        assert!(merge_sorted_runs(vec![vec![], vec![]]).is_empty());
        let one = vec![rec(1, 1)];
        assert_eq!(merge_sorted_runs(vec![one.clone()]), one);
    }

    proptest! {
        #[test]
        fn merge_equals_global_sort(
            runs in proptest::collection::vec(
                proptest::collection::vec((any::<i16>(), any::<i16>()), 0..20), 0..5)
        ) {
            let sorted_runs: Vec<Vec<(Vec<u8>, Row)>> = runs
                .iter()
                .map(|run| {
                    let mut r: Vec<_> = run
                        .iter()
                        .map(|&(k, v)| rec(i64::from(k), i64::from(v)))
                        .collect();
                    sort_records(&mut r);
                    r
                })
                .collect();
            let merged = merge_sorted_runs(sorted_runs.clone());
            let mut flat: Vec<_> = sorted_runs.into_iter().flatten().collect();
            sort_records(&mut flat);
            // Same multiset sorted by key; values may interleave differently
            // only within equal keys, and both are stable by run order, so
            // keys must match exactly.
            let merged_keys: Vec<&Vec<u8>> = merged.iter().map(|(k, _)| k).collect();
            let flat_keys: Vec<&Vec<u8>> = flat.iter().map(|(k, _)| k).collect();
            prop_assert_eq!(merged_keys, flat_keys);
        }

        #[test]
        fn combiner_never_changes_reduce_result(
            pairs in proptest::collection::vec((0i64..6, any::<i16>()), 0..40)
        ) {
            let mut records: Vec<_> = pairs
                .iter()
                .map(|&(k, v)| rec(k, i64::from(v)))
                .collect();
            sort_records(&mut records);

            let mut direct = Vec::new();
            reduce_sorted(&records, &SumReducer, &mut direct).unwrap();

            struct Resummer;
            impl Reducer for Resummer {
                fn reduce(&self, key: &Row, values: &[Row], out: &mut Vec<Row>) -> Result<()> {
                    let sum: i64 = values.iter().map(|v| v.at(1).as_i64().unwrap()).sum();
                    out.push(key.concat(&row![sum]));
                    Ok(())
                }
            }
            let combined = combine_sorted(records, &SumReducer).unwrap();
            let mut via_combiner = Vec::new();
            reduce_sorted(&combined, &Resummer, &mut via_combiner).unwrap();
            prop_assert_eq!(direct, via_combiner);
        }
    }
}
