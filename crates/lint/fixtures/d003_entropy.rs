//! D003 fixture: entropy-seeded randomness.
//! This file is NOT compiled; `clyde-lint --self-test` must flag it.

pub fn pick(n: u64) -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..n)
}
