//! Per-node I/O accounting.
//!
//! Every byte that moves through the DFS is attributed to a node and
//! classified as a local read, a remote read (crossed the network), or a
//! write. The cost model converts these counters into simulated seconds, and
//! the locality ratio is how we verify that CIF's co-locating placement
//! actually delivers node-local scans.

use crate::topology::NodeId;
use clyde_common::lockorder::Mutex;

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct NodeIo {
    local_read: u64,
    remote_read: u64,
    written: u64,
}

/// Immutable snapshot of the counters, per node plus totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub per_node: Vec<IoNodeSnapshot>,
    /// Replica reads rejected by checksum verification (cluster-wide).
    pub corrupt_reads: u64,
}

/// One node's totals within an [`IoSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoNodeSnapshot {
    pub node: usize,
    pub local_read: u64,
    pub remote_read: u64,
    pub written: u64,
}

impl IoSnapshot {
    pub fn total_local_read(&self) -> u64 {
        self.per_node.iter().map(|n| n.local_read).sum()
    }

    pub fn total_remote_read(&self) -> u64 {
        self.per_node.iter().map(|n| n.remote_read).sum()
    }

    pub fn total_read(&self) -> u64 {
        self.total_local_read() + self.total_remote_read()
    }

    pub fn total_written(&self) -> u64 {
        self.per_node.iter().map(|n| n.written).sum()
    }

    pub fn total_corrupt_reads(&self) -> u64 {
        self.corrupt_reads
    }

    /// Fraction of read bytes served from a local replica (1.0 = perfect
    /// locality). Returns 1.0 when nothing was read.
    pub fn locality_ratio(&self) -> f64 {
        let total = self.total_read();
        if total == 0 {
            1.0
        } else {
            self.total_local_read() as f64 / total as f64
        }
    }

    /// Difference since an earlier snapshot (counters are monotone).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        let mut per_node = self.per_node.clone();
        for n in &mut per_node {
            if let Some(e) = earlier.per_node.iter().find(|e| e.node == n.node) {
                n.local_read -= e.local_read;
                n.remote_read -= e.remote_read;
                n.written -= e.written;
            }
        }
        IoSnapshot {
            per_node,
            corrupt_reads: self.corrupt_reads.saturating_sub(earlier.corrupt_reads),
        }
    }
}

/// Per-task scan counters, updated by the DFS read path when a reader passes
/// one in. Unlike [`IoMetrics`] (cluster-wide, per node), a `ScanStats` is
/// owned by a single map task and feeds that task's entry in the cost model.
#[derive(Debug, Default)]
pub struct ScanStats {
    pub local_bytes: std::sync::atomic::AtomicU64,
    pub remote_bytes: std::sync::atomic::AtomicU64,
    /// Column chunks whose zone map was consulted during this task's scan.
    pub zone_checked: std::sync::atomic::AtomicU64,
    /// Of those, chunks skipped because the zone map ruled them out.
    pub zone_skipped: std::sync::atomic::AtomicU64,
}

impl ScanStats {
    pub fn new() -> ScanStats {
        ScanStats::default()
    }

    pub fn add_local(&self, bytes: u64) {
        self.local_bytes
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn add_remote(&self, bytes: u64) {
        self.remote_bytes
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn local(&self) -> u64 {
        self.local_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn remote(&self) -> u64 {
        self.remote_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn total(&self) -> u64 {
        self.local() + self.remote()
    }

    pub fn add_zone_checked(&self, n: u64) {
        self.zone_checked
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn add_zone_skipped(&self, n: u64) {
        self.zone_skipped
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn zone_checked(&self) -> u64 {
        self.zone_checked.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn zone_skipped(&self) -> u64 {
        self.zone_skipped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Thread-safe I/O counters for a cluster of `n` nodes.
#[derive(Debug)]
pub struct IoMetrics {
    nodes: Mutex<Vec<NodeIo>>,
    corrupt_reads: std::sync::atomic::AtomicU64,
}

impl IoMetrics {
    pub fn new(num_nodes: usize) -> IoMetrics {
        IoMetrics {
            nodes: Mutex::new(vec![NodeIo::default(); num_nodes]),
            corrupt_reads: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn record_local_read(&self, node: NodeId, bytes: u64) {
        self.nodes.lock()[node.0].local_read += bytes;
    }

    pub fn record_remote_read(&self, node: NodeId, bytes: u64) {
        self.nodes.lock()[node.0].remote_read += bytes;
    }

    pub fn record_write(&self, node: NodeId, bytes: u64) {
        self.nodes.lock()[node.0].written += bytes;
    }

    /// A replica read failed checksum verification on `_node` and was
    /// rejected before being served.
    pub fn record_corrupt_read(&self, _node: NodeId) {
        self.corrupt_reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        let nodes = self.nodes.lock();
        IoSnapshot {
            per_node: nodes
                .iter()
                .enumerate()
                .map(|(i, n)| IoNodeSnapshot {
                    node: i,
                    local_read: n.local_read,
                    remote_read: n.remote_read,
                    written: n.written,
                })
                .collect(),
            corrupt_reads: self
                .corrupt_reads
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for n in self.nodes.lock().iter_mut() {
            *n = NodeIo::default();
        }
        self.corrupt_reads
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Open a scoped snapshot: `delta()` reports only the I/O performed
    /// after this call. Lets consecutive jobs / bench iterations attribute
    /// DFS traffic without resetting (and thus bleeding into) each other's
    /// counters.
    pub fn scope(&self) -> IoScope<'_> {
        IoScope {
            metrics: self,
            start: self.snapshot(),
        }
    }
}

/// A window over [`IoMetrics`] opened by [`IoMetrics::scope`].
#[derive(Debug)]
pub struct IoScope<'a> {
    metrics: &'a IoMetrics,
    start: IoSnapshot,
}

impl IoScope<'_> {
    /// I/O performed since the scope was opened.
    pub fn delta(&self) -> IoSnapshot {
        self.metrics.snapshot().since(&self.start)
    }

    /// The snapshot taken when the scope was opened.
    pub fn start(&self) -> &IoSnapshot {
        &self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_node() {
        let m = IoMetrics::new(3);
        m.record_local_read(NodeId(0), 100);
        m.record_local_read(NodeId(0), 50);
        m.record_remote_read(NodeId(1), 25);
        m.record_write(NodeId(2), 10);
        let s = m.snapshot();
        assert_eq!(s.per_node[0].local_read, 150);
        assert_eq!(s.per_node[1].remote_read, 25);
        assert_eq!(s.per_node[2].written, 10);
        assert_eq!(s.total_read(), 175);
        assert_eq!(s.total_written(), 10);
    }

    #[test]
    fn locality_ratio() {
        let m = IoMetrics::new(2);
        assert_eq!(m.snapshot().locality_ratio(), 1.0);
        m.record_local_read(NodeId(0), 75);
        m.record_remote_read(NodeId(1), 25);
        assert!((m.snapshot().locality_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts() {
        let m = IoMetrics::new(1);
        m.record_local_read(NodeId(0), 10);
        let before = m.snapshot();
        m.record_local_read(NodeId(0), 7);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.total_local_read(), 7);
    }

    #[test]
    fn corrupt_reads_are_counted_and_scoped() {
        let m = IoMetrics::new(2);
        m.record_corrupt_read(NodeId(1));
        let before = m.snapshot();
        assert_eq!(before.total_corrupt_reads(), 1);
        m.record_corrupt_read(NodeId(0));
        assert_eq!(m.snapshot().since(&before).total_corrupt_reads(), 1);
        m.reset();
        assert_eq!(m.snapshot().total_corrupt_reads(), 0);
    }

    #[test]
    fn reset_zeroes() {
        let m = IoMetrics::new(1);
        m.record_write(NodeId(0), 5);
        m.reset();
        assert_eq!(m.snapshot().total_written(), 0);
    }

    #[test]
    fn scopes_do_not_bleed_into_each_other() {
        let m = IoMetrics::new(2);
        m.record_local_read(NodeId(0), 100); // earlier job's traffic
        let first = m.scope();
        m.record_local_read(NodeId(0), 10);
        m.record_remote_read(NodeId(1), 5);
        let d1 = first.delta();
        assert_eq!(d1.total_local_read(), 10);
        assert_eq!(d1.total_remote_read(), 5);

        let second = m.scope();
        assert_eq!(second.delta().total_read(), 0);
        m.record_write(NodeId(1), 3);
        assert_eq!(second.delta().total_written(), 3);
        // The earlier scope keeps its own baseline.
        assert_eq!(first.delta().total_local_read(), 10);
        assert_eq!(first.start().total_local_read(), 100);
    }
}
