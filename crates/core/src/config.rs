//! Feature flags — the knobs behind the paper's Section 6.5 ablation.

/// Which of Clydesdale's techniques are enabled. Defaults to all on (the
/// system as shipped); the Figure 9 ablation turns them off one at a time.
/// The `morsel`/`dict_predicates`/`simd_compaction`/`prefetch`/
/// `zone_fullcover` flags ablate the probe-kernel optimization stack
/// individually (DESIGN.md §10); results are identical with any of them
/// off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Columnar scans: read only the query's columns from CIF. Off = read
    /// every fact column (the paper measured a 3.4x average slowdown).
    pub columnar: bool,
    /// Block iteration (B-CIF): probe over column arrays. Off = materialize
    /// one row at a time (paper: ~1.2x slowdown).
    pub block_iteration: bool,
    /// Multi-threaded map tasks with shared hash tables and one task per
    /// node. Off = single-threaded tasks, one per slot, each building its
    /// own copy of the dimension hash tables (paper: ~2.4x slowdown, up to
    /// 4.5x on flight 4).
    pub multithreading: bool,
    /// JVM reuse: share hash tables across consecutive tasks on a node.
    /// Meaningful only when `multithreading` is on; off forces rebuilds.
    pub jvm_reuse: bool,
    /// Vectorized probe kernel: selection vectors over column slices and
    /// dense group-id aggregation. Off = the scalar row-at-a-time probe
    /// loop over the same blocks. Results are identical either way.
    pub vectorized: bool,
    /// Zone-map block skipping: CIF row groups whose per-column min/max
    /// cannot satisfy the query's predicates are skipped without decoding.
    /// Results are identical either way.
    pub zone_skipping: bool,
    /// Morsel-driven intra-task parallelism: a map task's threads pull
    /// block-sized morsels from a shared work queue instead of claiming
    /// whole splits, so short splits no longer leave threads idle. Off =
    /// one split part per thread (the pre-morsel scheduler).
    pub morsel: bool,
    /// Dictionary-encoded predicate compilation: string predicates on
    /// dimension columns are compiled to `u32` code compares against a
    /// sorted per-column dictionary during the hash-table build (equality
    /// via code lookup, ranges via code ranges). Off = plain string
    /// compares per dimension row.
    pub dict_predicates: bool,
    /// Branch-free (SIMD-friendly) selection-vector compaction in the
    /// vectorized kernel. Off = the branchy compaction loop.
    pub simd_compaction: bool,
    /// Software prefetching of direct-index probe slots, batched
    /// index-then-prefetch-then-probe. Off = demand loads only.
    pub prefetch: bool,
    /// Block-level zone-map evaluation inside the kernel: a block whose
    /// min/max fully covers a fact predicate skips per-row evaluation for
    /// it; a disjoint block is dropped whole. Off = per-row predicates
    /// always run.
    pub zone_fullcover: bool,
}

impl Default for Features {
    fn default() -> Features {
        Features {
            columnar: true,
            block_iteration: true,
            multithreading: true,
            jvm_reuse: true,
            vectorized: true,
            zone_skipping: true,
            morsel: true,
            dict_predicates: true,
            simd_compaction: true,
            prefetch: true,
            zone_fullcover: true,
        }
    }
}

impl Features {
    pub fn all_on() -> Features {
        Features::default()
    }

    /// Stable identity string for plan fingerprints (result-cache code
    /// tokens): one character per feature bit, in declaration order.
    /// Execution-only bits participate too — results are invariant across
    /// them, so including them can only cost a cache miss, never serve a
    /// wrong answer.
    pub fn token_bits(&self) -> String {
        [
            self.columnar,
            self.block_iteration,
            self.multithreading,
            self.jvm_reuse,
            self.vectorized,
            self.zone_skipping,
            self.morsel,
            self.dict_predicates,
            self.simd_compaction,
            self.prefetch,
            self.zone_fullcover,
        ]
        .iter()
        .map(|b| if *b { '1' } else { '0' })
        .collect()
    }

    pub fn without_columnar() -> Features {
        Features {
            columnar: false,
            ..Features::default()
        }
    }

    pub fn without_block_iteration() -> Features {
        Features {
            block_iteration: false,
            ..Features::default()
        }
    }

    pub fn without_multithreading() -> Features {
        Features {
            multithreading: false,
            jvm_reuse: false,
            ..Features::default()
        }
    }

    pub fn without_vectorized() -> Features {
        Features {
            vectorized: false,
            ..Features::default()
        }
    }

    pub fn without_zone_skipping() -> Features {
        Features {
            zone_skipping: false,
            ..Features::default()
        }
    }

    pub fn without_morsel() -> Features {
        Features {
            morsel: false,
            ..Features::default()
        }
    }

    pub fn without_dict_predicates() -> Features {
        Features {
            dict_predicates: false,
            ..Features::default()
        }
    }

    pub fn without_simd_compaction() -> Features {
        Features {
            simd_compaction: false,
            ..Features::default()
        }
    }

    pub fn without_prefetch() -> Features {
        Features {
            prefetch: false,
            ..Features::default()
        }
    }

    pub fn without_zone_fullcover() -> Features {
        Features {
            zone_fullcover: false,
            ..Features::default()
        }
    }

    /// The single-flag-off ablation points, paired with their labels.
    pub fn ablations() -> Vec<(&'static str, Features)> {
        vec![
            ("no-columnar", Features::without_columnar()),
            ("no-block-iteration", Features::without_block_iteration()),
            ("no-multithreading", Features::without_multithreading()),
            ("no-vectorized", Features::without_vectorized()),
            ("no-zone-skipping", Features::without_zone_skipping()),
            ("no-morsel", Features::without_morsel()),
            ("no-dict-predicates", Features::without_dict_predicates()),
            ("no-simd-compaction", Features::without_simd_compaction()),
            ("no-prefetch", Features::without_prefetch()),
            ("no-zone-fullcover", Features::without_zone_fullcover()),
        ]
    }

    /// Human-readable label used by the ablation harness.
    pub fn label(&self) -> &'static str {
        if *self == Features::default() {
            return "all-on";
        }
        for (name, f) in Features::ablations() {
            if *self == f {
                return name;
            }
        }
        "custom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_on() {
        let f = Features::default();
        assert!(f.columnar && f.block_iteration && f.multithreading && f.jvm_reuse);
        assert!(f.vectorized && f.zone_skipping);
        assert!(f.morsel && f.dict_predicates && f.simd_compaction);
        assert!(f.prefetch && f.zone_fullcover);
        assert_eq!(f.label(), "all-on");
    }

    #[test]
    fn ablation_constructors() {
        assert!(!Features::without_columnar().columnar);
        assert!(!Features::without_block_iteration().block_iteration);
        let mt = Features::without_multithreading();
        assert!(!mt.multithreading && !mt.jvm_reuse);
        assert_eq!(mt.label(), "no-multithreading");
        assert_eq!(Features::without_columnar().label(), "no-columnar");
        assert!(!Features::without_vectorized().vectorized);
        assert_eq!(Features::without_vectorized().label(), "no-vectorized");
        assert!(!Features::without_zone_skipping().zone_skipping);
        assert_eq!(
            Features::without_zone_skipping().label(),
            "no-zone-skipping"
        );
        assert!(!Features::without_morsel().morsel);
        assert_eq!(Features::without_morsel().label(), "no-morsel");
        assert!(!Features::without_dict_predicates().dict_predicates);
        assert!(!Features::without_simd_compaction().simd_compaction);
        assert!(!Features::without_prefetch().prefetch);
        assert!(!Features::without_zone_fullcover().zone_fullcover);
        assert_eq!(Features::without_prefetch().label(), "no-prefetch");
    }

    #[test]
    fn every_ablation_turns_off_exactly_its_flag_and_labels_round_trip() {
        for (name, f) in Features::ablations() {
            assert_eq!(f.label(), name);
            assert_ne!(f, Features::default(), "{name} must differ from default");
        }
        let custom = Features {
            columnar: false,
            vectorized: false,
            ..Features::default()
        };
        assert_eq!(custom.label(), "custom");
    }
}
