//! Figure 7 — Clydesdale vs Hive on cluster A (8 workers), SF1000.
//!
//! Usage: `fig7 [measurement-SF] [--trace <out.json>]` (default SF 0.02).
//! Executes all 13 SSB queries for real at the measurement scale
//! (validating every answer), then extrapolates to SF1000 on cluster A with
//! the calibrated cost model. With `--trace`, every measured job's timeline
//! is written as Perfetto-loadable Chrome trace JSON.

use clyde_bench::harness::{
    fault_impact, measure_with_obs, Extrapolator, MeasureWhat, MeasurementConfig,
};
use clyde_bench::paper;
use clyde_bench::report::{render_fault_impact, render_table, secs, speedup};
use clyde_dfs::ClusterSpec;
use clyde_hive::JoinStrategy;
use std::sync::Arc;

fn main() {
    let args = clyde_bench::cli::parse("fig7", 0.02);
    let sf = args.sf;
    let obs = args.obs();
    let config = MeasurementConfig {
        sf,
        ..MeasurementConfig::default()
    };
    eprintln!(
        "measuring all 13 SSB queries at SF {sf} (Clydesdale + Hive mapjoin + Hive repartition), validating results..."
    );
    let m = measure_with_obs(
        &config,
        MeasureWhat {
            hive: true,
            ablations: false,
        },
        Arc::clone(&obs),
    )
    .expect("measurement failed");
    args.write_trace(&obs);
    let ex = Extrapolator::new(ClusterSpec::cluster_a(), 1000.0, &m);

    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for qm in &m.queries {
        let clyde = ex.clyde_time(qm).expect("clydesdale never OOMs");
        let rp = ex
            .hive_time(&m, qm, JoinStrategy::Repartition)
            .expect("repartition never OOMs");
        let mj = ex.hive_time(&m, qm, JoinStrategy::MapJoin);
        speedups.push(rp / clyde);
        let (mj_cell, mj_speedup) = match mj {
            Ok(t) => {
                speedups.push(t / clyde);
                (secs(t), speedup(t / clyde))
            }
            Err(_) => ("OOM-FAILED".to_string(), "-".to_string()),
        };
        rows.push(vec![
            qm.query.id.clone(),
            secs(clyde),
            secs(rp),
            speedup(rp / clyde),
            mj_cell,
            mj_speedup,
        ]);
    }

    println!("\nFigure 7: SSB at SF1000 on cluster A (8 workers x 8 cores / 16 GB / 8 disks)\n");
    println!(
        "{}",
        render_table(
            &[
                "query",
                "Clydesdale",
                "Hive-repartition",
                "speedup",
                "Hive-mapjoin",
                "speedup",
            ],
            &rows,
        )
    );
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("speedup over Hive: min {min:.1}x  max {max:.1}x  avg {avg:.1}x");
    println!(
        "paper reports:     min {:.1}x  max {:.1}x  avg {:.1}x",
        paper::cluster_a::SPEEDUP_MIN,
        paper::cluster_a::SPEEDUP_MAX,
        paper::cluster_a::SPEEDUP_AVG
    );
    println!(
        "mapjoin OOM failures (paper: {:?}): {:?}",
        paper::cluster_a::MAPJOIN_OOM,
        m.queries
            .iter()
            .filter(|qm| ex.hive_time(&m, qm, JoinStrategy::MapJoin).is_err())
            .map(|qm| qm.query.id.as_str())
            .collect::<Vec<_>>()
    );

    if let Some(seed) = args.faults {
        eprintln!("\nre-running all 13 queries under the `combined` fault plan (seed {seed})...");
        let impacts = fault_impact(&config, seed).expect("fault impact run failed");
        println!(
            "\nFault impact (combined plan, seed {seed}, measurement scale SF {sf}): \
             every answer identical to the fault-free run\n"
        );
        println!("{}", render_fault_impact(&impacts));
    }
}
