//! Input formats, splits, and readers.
//!
//! An `InputFormat` has the two responsibilities the paper describes in
//! Section 3: `getSplits()` (here [`InputFormat::splits`]) partitions the
//! input into locality-tagged units of scheduling, and `getRecordReader()`
//! (here [`InputFormat::open`]) turns a split into a typed reader.
//!
//! Two reader shapes exist, matching the paper's two iteration models:
//! row-at-a-time [`RecordReader`]s (the Hadoop default, used by the Hive
//! baseline and by Clydesdale's block-iteration-off ablation) and
//! [`BlockReader`]s that return a [`RowBlock`] per call (B-CIF,
//! Section 5.3).

use crate::conf::JobConf;
use crate::task::TaskIo;
use clyde_common::{ClydeError, Result, Row, RowBlock};
use clyde_dfs::{Dfs, NodeId};

/// How a split's data is addressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitSpec {
    /// A byte range of one file (text, row-binary, and similar formats).
    FileRange { path: String, offset: u64, len: u64 },
    /// One or more row groups of a group-structured table (CIF, RCFile).
    /// More than one group makes this a *multi-split* — the MultiCIF
    /// mechanism from paper Section 5.1 that lets each thread of a
    /// multi-threaded map task deserialize its own constituent split.
    Groups { base: String, groups: Vec<usize> },
    /// A range of records held by the input format itself (in-memory inputs
    /// for tests and synthetic workload generators).
    Inline { from: usize, to: usize },
}

impl SplitSpec {
    /// Number of independently readable parts (constituent splits).
    pub fn num_parts(&self) -> usize {
        match self {
            SplitSpec::FileRange { .. } | SplitSpec::Inline { .. } => 1,
            SplitSpec::Groups { groups, .. } => groups.len().max(1),
        }
    }
}

/// A unit of map-task scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Dense index within the job.
    pub index: usize,
    pub spec: SplitSpec,
    /// Nodes that can read this split locally, best first.
    pub hosts: Vec<NodeId>,
    /// Estimated on-DFS bytes, for balancing and the cost model.
    pub bytes: u64,
}

/// Row-at-a-time reader: Hadoop's `RecordReader.next()`.
pub trait RecordReader: Send {
    /// The next (key, value) record, or `None` at end of split.
    fn next(&mut self) -> Result<Option<(Row, Row)>>;
}

/// Block reader: returns an array of rows per call (B-CIF, Section 5.3),
/// amortizing per-record framework overhead.
pub trait BlockReader: Send {
    /// The next block of rows, or `None` at end of split.
    fn next_block(&mut self) -> Result<Option<RowBlock>>;
}

/// Either reader shape, as constructed by an [`InputFormat`].
pub enum Reader {
    Rows(Box<dyn RecordReader>),
    Blocks(Box<dyn BlockReader>),
}

impl Reader {
    /// Unwrap as a row reader, erroring if the format produced blocks.
    pub fn into_rows(self) -> Result<Box<dyn RecordReader>> {
        match self {
            Reader::Rows(r) => Ok(r),
            Reader::Blocks(_) => Err(ClydeError::MapReduce(
                "expected a row reader but the input format produced blocks".into(),
            )),
        }
    }

    /// Unwrap as a block reader, erroring if the format produced rows.
    pub fn into_blocks(self) -> Result<Box<dyn BlockReader>> {
        match self {
            Reader::Blocks(r) => Ok(r),
            Reader::Rows(_) => Err(ClydeError::MapReduce(
                "expected a block reader but the input format produced rows".into(),
            )),
        }
    }
}

/// The Hadoop `InputFormat` contract.
pub trait InputFormat: Send + Sync {
    /// Partition the input into splits (`getSplits()`).
    fn splits(&self, dfs: &Dfs, conf: &JobConf) -> Result<Vec<InputSplit>>;

    /// Open part `part` of a split (`getRecordReader()`; multi-splits expose
    /// `num_parts()` parts, each independently readable — the paper's
    /// `getMultipleReaders()`).
    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader>;
}

/// An adapter that presents a block reader as a row reader by materializing
/// one row at a time — the framework path Clydesdale's block iteration
/// bypasses. Used by the `block_iteration = off` ablation so the *same*
/// storage format can be driven through the slow iteration model.
pub struct RowsFromBlocks {
    inner: Box<dyn BlockReader>,
    current: Option<RowBlock>,
    pos: usize,
}

impl RowsFromBlocks {
    pub fn new(inner: Box<dyn BlockReader>) -> RowsFromBlocks {
        RowsFromBlocks {
            inner,
            current: None,
            pos: 0,
        }
    }
}

impl RecordReader for RowsFromBlocks {
    fn next(&mut self) -> Result<Option<(Row, Row)>> {
        loop {
            if let Some(block) = &self.current {
                if self.pos < block.len() {
                    let row = block.row(self.pos);
                    self.pos += 1;
                    return Ok(Some((Row::empty(), row)));
                }
            }
            match self.inner.next_block()? {
                Some(b) => {
                    self.current = Some(b);
                    self.pos = 0;
                }
                None => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::{row, ColumnData};

    struct TwoBlocks(usize);

    impl BlockReader for TwoBlocks {
        fn next_block(&mut self) -> Result<Option<RowBlock>> {
            self.0 += 1;
            match self.0 {
                1 => Ok(Some(RowBlock::new(vec![ColumnData::I32(vec![1, 2])])?)),
                2 => Ok(Some(RowBlock::new(vec![ColumnData::I32(vec![3])])?)),
                _ => Ok(None),
            }
        }
    }

    #[test]
    fn split_parts() {
        let s = SplitSpec::FileRange {
            path: "/f".into(),
            offset: 0,
            len: 10,
        };
        assert_eq!(s.num_parts(), 1);
        let g = SplitSpec::Groups {
            base: "/t".into(),
            groups: vec![3, 7, 9],
        };
        assert_eq!(g.num_parts(), 3);
    }

    #[test]
    fn rows_from_blocks_flattens() {
        let mut r = RowsFromBlocks::new(Box::new(TwoBlocks(0)));
        let mut seen = Vec::new();
        while let Some((_, v)) = r.next().unwrap() {
            seen.push(v);
        }
        assert_eq!(seen, vec![row![1i32], row![2i32], row![3i32]]);
    }

    #[test]
    fn reader_unwrap_errors_on_wrong_shape() {
        let r = Reader::Blocks(Box::new(TwoBlocks(0)));
        assert!(r.into_rows().is_err());
        let r = Reader::Rows(Box::new(RowsFromBlocks::new(Box::new(TwoBlocks(0)))));
        assert!(r.into_blocks().is_err());
    }
}
