//! Sorted string dictionaries for predicate compilation.
//!
//! The probe path's dimension predicates compare strings (`p_category =
//! 'MFGR#12'`, `s_region = 'AMERICA'`, brand ranges). A [`SortedDict`] maps
//! each distinct value of a column to a dense `u32` code assigned in
//! *lexicographic* order, so:
//!
//! * equality compiles to one code compare (`code == c`), with a value
//!   absent from the dictionary compiling to *never-matches*;
//! * an inclusive string range `[lo, hi]` compiles to one inclusive code
//!   range `[lo_code, hi_code]`, because sorted codes preserve order.
//!
//! This differs from [`crate::encoding::Encoding::Dict`], whose wire
//! dictionary is first-appearance-ordered for streaming writes; the sorted
//! variant exists for compute, not storage.

use std::sync::Arc;

/// A sorted dictionary over the distinct values of one string column.
#[derive(Debug, Clone, Default)]
pub struct SortedDict {
    values: Vec<Arc<str>>,
}

impl SortedDict {
    /// Build from any value stream; duplicates collapse, order is sorted.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I) -> SortedDict {
        let mut values: Vec<Arc<str>> = values.into_iter().map(Arc::from).collect();
        values.sort();
        values.dedup();
        SortedDict { values }
    }

    /// The code of `value`, or `None` if it never occurs in the column.
    #[inline]
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.as_ref().cmp(value))
            .ok()
            .map(|i| i as u32)
    }

    /// Encode every value of the column (must come from the same stream the
    /// dictionary was built over, so lookups cannot miss).
    pub fn encode<'a, I: IntoIterator<Item = &'a str>>(&self, values: I) -> Vec<u32> {
        values
            .into_iter()
            .map(|v| self.code_of(v).expect("value was in the build stream"))
            .collect()
    }

    /// The inclusive code range matching string range `[lo, hi]`, or `None`
    /// when no dictionary value falls inside it. Codes are assigned in
    /// sorted order, so the matching codes are always contiguous.
    pub fn code_range(&self, lo: &str, hi: &str) -> Option<(u32, u32)> {
        let start = self.values.partition_point(|v| v.as_ref() < lo);
        let end = self.values.partition_point(|v| v.as_ref() <= hi);
        (start < end).then(|| (start as u32, end as u32 - 1))
    }

    /// The value behind a code.
    #[inline]
    pub fn value(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_sorted_dense_and_invertible() {
        let d = SortedDict::build(["EUROPE", "AMERICA", "ASIA", "AMERICA"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code_of("AMERICA"), Some(0));
        assert_eq!(d.code_of("ASIA"), Some(1));
        assert_eq!(d.code_of("EUROPE"), Some(2));
        assert_eq!(d.code_of("AFRICA"), None);
        assert_eq!(d.value(1).as_ref(), "ASIA");
    }

    #[test]
    fn ranges_compile_to_contiguous_code_ranges() {
        let d = SortedDict::build(["MFGR#2221", "MFGR#2223", "MFGR#2225", "MFGR#2228"]);
        // Inclusive bounds, non-member endpoints.
        assert_eq!(d.code_range("MFGR#2221", "MFGR#2228"), Some((0, 3)));
        assert_eq!(d.code_range("MFGR#2222", "MFGR#2227"), Some((1, 2)));
        assert_eq!(d.code_range("MFGR#2223", "MFGR#2223"), Some((1, 1)));
        // Empty intersections.
        assert_eq!(d.code_range("MFGR#2226", "MFGR#2227"), None);
        assert_eq!(d.code_range("A", "B"), None);
        assert_eq!(
            d.code_range("Z", "A"),
            None,
            "inverted range matches nothing"
        );
    }

    #[test]
    fn encode_round_trips() {
        let vals = ["b", "a", "c", "a", "b"];
        let d = SortedDict::build(vals);
        let codes = d.encode(vals);
        assert_eq!(codes, vec![1, 0, 2, 0, 1]);
        for (v, c) in vals.iter().zip(&codes) {
            assert_eq!(d.value(*c).as_ref(), *v);
        }
    }

    #[test]
    fn empty_dict() {
        let d = SortedDict::build([]);
        assert!(d.is_empty());
        assert_eq!(d.code_of("x"), None);
        assert_eq!(d.code_range("a", "z"), None);
    }
}
