//! `clyde-lint` v2: the determinism & concurrency invariant catalog,
//! enforced by a zero-dependency static analyzer.
//!
//! The workspace's load-bearing guarantee is that traces, metric snapshots,
//! and query results are byte-identical across runs, fault plans, and thread
//! counts — and that the recovery paths backing the fault claims cannot
//! panic. Those properties are easy to break silently, so this crate checks
//! them mechanically on every CI run. The v1 scanner matched tokens against
//! masked lines; v2 keeps those rules and adds the structure they could not
//! see — a hand-rolled lossless lexer ([`lexer`]), a simplified per-file AST
//! ([`parse`]), and an intra-crate call graph with a static lock graph
//! ([`graph`]):
//!
//! * **D001 `unordered`** — no unordered `HashMap`/`HashSet` iteration may
//!   feed output: sort nearby, collect into a `BTreeMap`/`BTreeSet`, end in
//!   an order-insensitive reduction, or pragma with a reason.
//! * **D002 `wallclock`** — `Instant::now` / `SystemTime` only in the
//!   audited wall-phase module ([`D002_ALLOWED`]); everything else measures
//!   through `WallTimer`.
//! * **D003 `entropy`** — no entropy-seeded randomness; all RNG flows from
//!   explicit seeds through the splitmix64 plumbing.
//! * **D004 `concurrency`** — concurrency primitives only in the audited
//!   modules ([`D004_AUDITED`]); task code paths stay lock-free.
//! * **D005 `metricname`** — metric names are string literals in registered
//!   namespaces ([`D005_NAMESPACES`]); `scheduler.*` and `cache.*` are
//!   closed registries ([`D005_SCHEDULER_METRICS`],
//!   [`D005_CACHE_METRICS`]).
//! * **D006 `floatorder`** — non-associative float reductions in the
//!   merge-scope files ([`rules::d006::D006_MERGE_SCOPE`]) must pin their
//!   fold order or carry a reasoned pragma.
//! * **D007 `panicfree`** — no `unwrap`/`expect`/`panic!`/unchecked
//!   indexing on the designated recovery surface
//!   ([`rules::d007::D007_RECOVERY`]); grandfathered sites live in
//!   `baseline.lint` under a CI-enforced downward ratchet ([`baseline`]).
//! * **D008 `walltaint`** — per-function taint tracking: wall-derived
//!   values must not reach sim-time sinks (metrics, traces, profile JSON)
//!   except through the filtered `*wall*` channels.
//! * **D009 `lockgraph`** — the static lock-acquisition graph over the
//!   call graph must be acyclic, catching at lint time the inversions the
//!   runtime `lockorder` checker only sees on unlucky schedules.
//!
//! Violations are suppressed by a pragma on the offending line or the line
//! directly above:
//!
//! ```text
//! // clyde-lint: allow(floatorder, reason=fixed-merge-order, results sorted by first_morsel)
//! ```
//!
//! The reason is mandatory; a pragma without one is itself an error (P001).
//! Deliberately not a rustc plugin: the analyzer lexes and parses the whole
//! workspace in milliseconds, with no nightly dependency, and its rules stay
//! greppable.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use rules::d006::D006_MERGE_SCOPE;
pub use rules::d007::D007_RECOVERY;
pub use rules::d008::D008_SINKS;

/// The invariant catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D001: unordered hash-container iteration.
    Unordered,
    /// D002: wall-clock read outside the wall-phase module.
    WallClock,
    /// D003: entropy-seeded randomness.
    Entropy,
    /// D004: concurrency primitive outside an audited module.
    Concurrency,
    /// D005: metric name that is not a literal in a registered namespace.
    MetricName,
    /// D006: unpinned float reduction in merge-scope code.
    FloatOrder,
    /// D007: panic-capable site on the recovery surface.
    PanicFree,
    /// D008: wall-derived value flowing into a sim-time artifact.
    WallTaint,
    /// D009: cycle in the static lock-acquisition graph.
    LockGraph,
    /// P001: malformed `clyde-lint` pragma.
    BadPragma,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::Unordered,
        Rule::WallClock,
        Rule::Entropy,
        Rule::Concurrency,
        Rule::MetricName,
        Rule::FloatOrder,
        Rule::PanicFree,
        Rule::WallTaint,
        Rule::LockGraph,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::Unordered => "D001",
            Rule::WallClock => "D002",
            Rule::Entropy => "D003",
            Rule::Concurrency => "D004",
            Rule::MetricName => "D005",
            Rule::FloatOrder => "D006",
            Rule::PanicFree => "D007",
            Rule::WallTaint => "D008",
            Rule::LockGraph => "D009",
            Rule::BadPragma => "P001",
        }
    }

    /// The name used in `allow(...)` pragmas.
    pub fn pragma_name(self) -> &'static str {
        match self {
            Rule::Unordered => "unordered",
            Rule::WallClock => "wallclock",
            Rule::Entropy => "entropy",
            Rule::Concurrency => "concurrency",
            Rule::MetricName => "metricname",
            Rule::FloatOrder => "floatorder",
            Rule::PanicFree => "panicfree",
            Rule::WallTaint => "walltaint",
            Rule::LockGraph => "lockgraph",
            Rule::BadPragma => "pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: `file:line: CODE message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Modules allowed to read the wall clock (D002).
pub const D002_ALLOWED: &[&str] = &["crates/common/src/obs/wall.rs"];

/// Audited concurrency modules (D004): every `Mutex`/`RwLock`/spawn site in
/// these files has been reviewed for lock ordering (and runs under the
/// debug-build lock-order checker); everything else must stay lock-free.
pub const D004_AUDITED: &[&str] = &[
    // The checker itself and the observability hub's internal state.
    "crates/common/src/lockorder.rs",
    "crates/common/src/obs/mod.rs",
    "crates/common/src/obs/span.rs",
    "crates/common/src/obs/metrics.rs",
    // The multi-threaded map runner (paper Figure 5): the shared morsel
    // source (one mutex around reader state, held only to slice the next
    // block) and the thread-result sink; plus parallel dimension builds.
    // Audited 2026-08: no nested lock acquisition — `MorselSource::next`
    // and the `done` sink take one lock each and never both. (Rule D009
    // now re-derives this statically on every run.)
    "crates/core/src/mtrunner.rs",
    "crates/core/src/hashtable.rs",
    // The MapReduce engine, task context, and distributed cache.
    "crates/mapred/src/engine.rs",
    "crates/mapred/src/task.rs",
    "crates/mapred/src/distcache.rs",
    // DFS shared state: block stores, namespace, per-node I/O counters.
    "crates/dfs/src/local.rs",
    "crates/dfs/src/dfs.rs",
    "crates/dfs/src/metrics.rs",
    // NOT listed, deliberately: the multi-job server and slot scheduler
    // (`crates/mapred/src/server.rs`, `crates/mapred/src/scheduler.rs`,
    // `crates/core/src/server.rs`). Audited 2026-08: the server executes
    // admitted jobs *sequentially* through the audited engine and derives
    // the concurrent timeline in a pure discrete-event simulation, so the
    // whole layer is lock-free by design — concurrency lives only in data
    // (SimJob/Placement), never in threads. Keeping these files off the
    // allowlist means D004 fires the moment anyone reintroduces real
    // threading there (see `d004_job_server_layer_stays_lock_free`).
];

/// Namespaces a literal metric name may live in (D005).
pub const D005_NAMESPACES: [&str; 5] = ["mapred.", "dfs.", "scheduler.", "probe.", "cache."];

/// Files exempt from D005: the metrics registry itself (defines the
/// emitters and unit-tests them with throwaway names).
pub const D005_ALLOWED: &[&str] = &["crates/common/src/obs/metrics.rs"];

/// The closed set of `scheduler.*` series. These are a CI gate surface —
/// the `workload-gate` job and the server swimlane tests assert on them by
/// name — so unlike the open namespaces, a `scheduler.` literal must match
/// this registry exactly. Emitting a new scheduler series means adding it
/// here (and to the goldens that read it) in the same change.
pub const D005_SCHEDULER_METRICS: [&str; 9] = [
    "scheduler.split_locality",
    "scheduler.jobs_admitted",
    "scheduler.jobs_rejected_queue_full",
    "scheduler.jobs_rejected_quota",
    "scheduler.queue_peak_depth",
    "scheduler.tenant_count",
    "scheduler.makespan_s",
    "scheduler.queue_wait_s",
    "scheduler.job_latency_s",
];

/// The closed set of `cache.*` series (the result-cache surface). Like the
/// scheduler registry, these are a gate surface — the `restore-gate` CI job
/// and `shadow_check --restore` compare them byte-for-byte — so every
/// `cache.` literal must match this registry exactly.
pub const D005_CACHE_METRICS: [&str; 8] = [
    "cache.hits",
    "cache.misses",
    "cache.evictions",
    "cache.invalidations",
    "cache.inserts",
    "cache.bytes_served",
    "cache.bytes_stored",
    "cache.entries",
];

/// A parsed `allow(rule, reason=...)` suppression pragma.
#[derive(Debug, Clone)]
pub(crate) struct Pragma {
    line: usize,
    rule_name: String,
}

const PRAGMA_NAMES: [&str; 9] = [
    "unordered",
    "wallclock",
    "entropy",
    "concurrency",
    "metricname",
    "floatorder",
    "panicfree",
    "walltaint",
    "lockgraph",
];

/// Parse pragmas out of the file's comments. Malformed pragmas become P001
/// violations.
fn parse_pragmas(
    file: &Path,
    comments: &[(usize, String)],
    violations: &mut Vec<Violation>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (line, text) in comments {
        let Some(pos) = text.find("clyde-lint:") else {
            continue;
        };
        let rest = text[pos + "clyde-lint:".len()..].trim();
        let ok = (|| -> Option<Pragma> {
            let body = rest.strip_prefix("allow(")?;
            let body = body.strip_suffix(')').unwrap_or(body);
            let (rule_name, reason_part) = body.split_once(',')?;
            let reason = reason_part.trim().strip_prefix("reason=")?;
            if reason.trim().is_empty() {
                return None;
            }
            let rule_name = rule_name.trim().to_string();
            if !PRAGMA_NAMES.contains(&rule_name.as_str()) {
                return None;
            }
            Some(Pragma {
                line: *line,
                rule_name,
            })
        })();
        match ok {
            Some(p) => pragmas.push(p),
            None => violations.push(Violation {
                file: file.to_path_buf(),
                line: *line,
                rule: Rule::BadPragma,
                message: format!(
                    "malformed pragma `{}` — expected \
                     `clyde-lint: allow(<rule>, reason=...)` with a non-empty reason and \
                     a rule in {}",
                    rest,
                    PRAGMA_NAMES.join("|")
                ),
            }),
        }
    }
    pragmas
}

/// A pragma suppresses matching violations on its own line and the line
/// directly below (so it can ride above the offending statement).
fn suppress(violations: &mut Vec<Violation>, pragmas: &[Pragma]) {
    violations.retain(|v| {
        v.rule == Rule::BadPragma
            || !pragmas.iter().any(|p| {
                p.rule_name == v.rule.pragma_name() && (p.line == v.line || p.line + 1 == v.line)
            })
    });
}

pub(crate) fn rel_allowed(file: &Path, allowlist: &[&str]) -> bool {
    let norm: String = file
        .to_string_lossy()
        .replace('\\', "/")
        .trim_start_matches("./")
        .to_string();
    allowlist.iter().any(|a| norm.ends_with(a))
}

/// Lex + parse one file into the per-file analysis inputs.
fn analyze_file(src: &str) -> (Vec<String>, Vec<(usize, String)>, parse::FileAst) {
    let toks = lexer::lex(src);
    let masked = lexer::masked_lines(&toks);
    let comments = lexer::line_comments(&toks);
    let ast = parse::parse(&toks);
    (masked, comments, ast)
}

/// Scan one file's source text. `file` is used for allowlisting and
/// reporting only. The file is treated as its own crate for D009, so
/// single-file scans (fixtures, unit tests) exercise the lock graph too.
pub fn scan_source(file: &Path, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (masked, comments, ast) = analyze_file(src);
    let pragmas = parse_pragmas(file, &comments, &mut violations);
    let ctx = rules::FileCtx {
        file,
        raw: src,
        masked: &masked,
        ast: &ast,
    };
    rules::run_file(&ctx, &mut violations);
    violations.extend(rules::d009::scan_crate(&[(
        &file.to_string_lossy().replace('\\', "/"),
        &ast,
    )]));
    suppress(&mut violations, &pragmas);
    violations.sort();
    violations
}

/// Recursively collect the `.rs` files the lint covers.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.retain(|f| {
        let s = f.to_string_lossy().replace('\\', "/");
        !s.contains("/target/") && !s.contains("/fixtures/") && !s.contains("/shims/")
    });
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every covered file under `root`; violations come back sorted by
/// (file, line) so the report itself is deterministic. Unlike
/// [`scan_source`], D009 runs once per *crate* here, so lock-order edges
/// are connected across a crate's files through its call graph.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    let mut parsed: Vec<(String, parse::FileAst)> = Vec::new();
    let mut pragmas_by_file: Vec<(String, Vec<Pragma>)> = Vec::new();
    for file in collect_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let (masked, comments, ast) = analyze_file(&src);
        let mut violations = Vec::new();
        let pragmas = parse_pragmas(&rel, &comments, &mut violations);
        let ctx = rules::FileCtx {
            file: &rel,
            raw: &src,
            masked: &masked,
            ast: &ast,
        };
        rules::run_file(&ctx, &mut violations);
        suppress(&mut violations, &pragmas);
        all.extend(violations);
        parsed.push((rel_str.clone(), ast));
        pragmas_by_file.push((rel_str, pragmas));
    }
    let mut lock_violations = rules::d009::scan_workspace_groups(&parsed);
    for (file, pragmas) in &pragmas_by_file {
        let mut own: Vec<Violation> = lock_violations
            .iter()
            .filter(|v| v.file.to_string_lossy().replace('\\', "/") == *file)
            .cloned()
            .collect();
        suppress(&mut own, pragmas);
        lock_violations.retain(|v| v.file.to_string_lossy().replace('\\', "/") != *file);
        lock_violations.extend(own);
    }
    all.extend(lock_violations);
    all.sort();
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source(Path::new("crates/x/src/lib.rs"), src)
    }

    fn rules(vs: &[Violation]) -> Vec<Rule> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_source_passes() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> {
                m.values().copied().collect()
            }
        "#;
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_flags_unsorted_iteration() {
        let src =
            "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    m.values().copied().collect()\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Unordered]);
    }

    #[test]
    fn d001_accepts_sorted_collection() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.values().copied().collect();\n    v.sort();\n    v\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_accepts_order_free_reduction() {
        let src = "fn f(m: &FxHashMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d001_sees_for_loops() {
        let src = "fn f(set: FxHashSet<u32>) {\n    for x in set {\n        println!(\"{x}\");\n    }\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Unordered]);
    }

    #[test]
    fn d002_flags_instant_and_allows_wall_module() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules(&scan(src)), vec![Rule::WallClock]);
        assert!(scan_source(Path::new("crates/common/src/obs/wall.rs"), src).is_empty());
    }

    #[test]
    fn d003_flags_entropy() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(rules(&scan(src)), vec![Rule::Entropy]);
    }

    #[test]
    fn d004_flags_unaudited_mutex() {
        let src = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
        let vs = scan(src);
        assert!(!vs.is_empty());
        assert!(vs.iter().all(|v| v.rule == Rule::Concurrency));
        let audited = scan_source(Path::new("crates/mapred/src/task.rs"), src);
        assert!(audited.is_empty());
    }

    #[test]
    fn d005_flags_unregistered_namespace() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"clyde.jobs\", 1);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_flags_non_literal_name() {
        let src = "fn f(m: &Metrics, name: &str) {\n    m.gauge_set(name, 0.5);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_accepts_registered_names_and_wrapped_calls() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"mapred.jobs\", 1);\n    m.gauge_set(\"scheduler.split_locality\", 0.5);\n    m.histogram_record(\n        \"dfs.scan.local_bytes\",\n        2.0,\n    );\n    m.counter_add(\"probe.prefetch_activations\", 1);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d005_skips_definitions_and_registry_module() {
        let src = "impl Metrics {\n    pub fn counter_add(&self, name: &str, delta: u64) {\n        self.add(name, delta);\n    }\n}\n";
        assert!(scan(src).is_empty());
        let call = "fn f(m: &Metrics) { m.counter_add(\"x\", 1); }\n";
        assert!(scan_source(Path::new("crates/common/src/obs/metrics.rs"), call).is_empty());
    }

    #[test]
    fn d004_job_server_layer_stays_lock_free() {
        // The audit entry for the multi-job server: these files are kept
        // OFF the D004 allowlist, so this test (and the workspace scan)
        // fails the moment real threading appears in the scheduling layer.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for rel in [
            "crates/mapred/src/server.rs",
            "crates/mapred/src/scheduler.rs",
            "crates/core/src/server.rs",
            "crates/dfs/src/cache.rs",
        ] {
            assert!(
                !rel_allowed(Path::new(rel), D004_AUDITED),
                "{rel} must not be on the D004 allowlist"
            );
            let src = std::fs::read_to_string(root.join(rel)).expect(rel);
            let concurrency: Vec<_> = scan_source(Path::new(rel), &src)
                .into_iter()
                .filter(|v| v.rule == Rule::Concurrency)
                .collect();
            assert!(
                concurrency.is_empty(),
                "{rel} grew concurrency primitives: {concurrency:?}"
            );
        }
    }

    #[test]
    fn d005_flags_unregistered_scheduler_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"scheduler.queue_drops\", 1);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_accepts_registered_scheduler_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"scheduler.jobs_admitted\", 1);\n    m.gauge_set(\"scheduler.queue_peak_depth\", 3.0);\n    m.histogram_record(\"scheduler.queue_wait_s\", 0.5);\n    m.histogram_record(\"scheduler.job_latency_s\", 1.5);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d005_flags_unregistered_cache_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"cache.size\", 1);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::MetricName]);
    }

    #[test]
    fn d005_accepts_registered_cache_series() {
        let src = "fn f(m: &Metrics) {\n    m.counter_add(\"cache.hits\", 1);\n    m.counter_add(\"cache.misses\", 2);\n    m.counter_add(\"cache.bytes_served\", 64);\n    m.gauge_set(\"cache.bytes_stored\", 128.0);\n    m.gauge_set(\"cache.entries\", 2.0);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d005_pragma_suppresses() {
        let src = "fn f(m: &Metrics) {\n    // clyde-lint: allow(metricname, reason=experimental namespace behind a feature flag)\n    m.counter_add(\"exp.jobs\", 1);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> u64 {\n    // clyde-lint: allow(unordered, reason=commutative fold)\n    m.values().fold(0u64, |a, &b| a ^ b as u64)\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let src = "// clyde-lint: allow(unordered)\nfn f() {}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::BadPragma]);
    }

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "fn f() {\n    // HashMap iteration and Instant::now in prose\n    let s = \"Mutex thread_rng SystemTime\";\n    let _ = s;\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() -> &'static str {\n    r#\"Instant::now Mutex\"#\n}\n";
        assert!(scan(src).is_empty());
    }

    // ---- v2 structural rules ----

    #[test]
    fn d006_flags_fold_in_merge_scope_only() {
        let src = "fn merge(xs: Vec<i64>) -> i64 {\n    xs.iter().fold(0, |a, b| a + b)\n}\n";
        let in_scope = scan_source(Path::new("crates/core/src/mtrunner.rs"), src);
        assert_eq!(rules(&in_scope), vec![Rule::FloatOrder]);
        assert!(scan(src).is_empty(), "neutral files are out of scope");
    }

    #[test]
    fn d006_sum_needs_float_evidence() {
        let int_sum =
            "fn total(runs: &[Vec<u8>]) -> usize {\n    runs.iter().map(Vec::len).sum()\n}\n";
        assert!(scan_source(Path::new("crates/mapred/src/shuffle.rs"), int_sum).is_empty());
        let float_sum = "fn total(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>()\n}\n";
        assert_eq!(
            rules(&scan_source(
                Path::new("crates/mapred/src/shuffle.rs"),
                float_sum
            )),
            vec![Rule::FloatOrder]
        );
    }

    #[test]
    fn d006_flags_float_accumulation_in_loops() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for x in xs {\n        acc += x;\n    }\n    acc\n}\n";
        assert_eq!(
            rules(&scan_source(Path::new("crates/core/src/mtrunner.rs"), src)),
            vec![Rule::FloatOrder]
        );
    }

    #[test]
    fn d006_pragma_suppresses() {
        let src = "fn merge(xs: Vec<i64>) -> i64 {\n    // clyde-lint: allow(floatorder, reason=fixed-merge-order, inputs sorted)\n    xs.iter().fold(0, |a, b| a + b)\n}\n";
        assert!(scan_source(Path::new("crates/core/src/mtrunner.rs"), src).is_empty());
    }

    #[test]
    fn d007_flags_panic_sites_in_recovery_scope() {
        let src = "pub fn heal(xs: &[u8]) -> u8 {\n    let first = xs.first().unwrap();\n    let second = xs[1];\n    panic!(\"no\");\n}\n";
        let vs = scan_source(Path::new("crates/mapred/src/fault.rs"), src);
        assert_eq!(vs.len(), 3, "{vs:?}");
        assert!(vs.iter().all(|v| v.rule == Rule::PanicFree));
        assert!(scan(src).is_empty(), "neutral files are out of scope");
    }

    #[test]
    fn d007_fn_scoped_files_only_audit_named_fns() {
        let src = "impl E {\n    fn run_job_inner(&self) { self.x.unwrap(); }\n    fn helper(&self) { self.x.unwrap(); }\n}\n";
        let vs = scan_source(Path::new("crates/mapred/src/engine.rs"), src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::PanicFree);
    }

    #[test]
    fn d007_skips_tests_and_checked_alternatives() {
        let src = "pub fn heal(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { heal(None); assert_eq!(v[0], 1); v.x.unwrap(); }\n}\n";
        assert!(scan_source(Path::new("crates/mapred/src/fault.rs"), src).is_empty());
    }

    #[test]
    fn d008_flags_wall_flow_into_sinks() {
        let src = "fn f(m: &Metrics) {\n    let t = WallTimer::start();\n    let spent = t.elapsed_s();\n    m.histogram_record(\"mapred.phase_s\", spent);\n}\n";
        assert_eq!(rules(&scan(src)), vec![Rule::WallTaint]);
    }

    #[test]
    fn d008_wall_named_series_are_the_filtered_channel() {
        let src = "fn f(m: &Metrics, t: &WallTimer) {\n    m.histogram_record(\"mapred.task_wall_ms\", t.elapsed_s() * 1e3);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d008_sim_time_values_are_untainted() {
        let src = "fn f(m: &Metrics, sim_s: f64) {\n    m.histogram_record(\"mapred.task_sim_s\", sim_s);\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn d009_reports_cycles_via_scan_source() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n    fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n}\n";
        let vs = scan_source(Path::new("crates/mapred/src/task.rs"), src);
        assert_eq!(rules(&vs), vec![Rule::LockGraph], "{vs:?}");
        assert!(vs[0].message.contains("a -> b -> a"));
    }

    #[test]
    fn d009_consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n    fn ab2(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n}\n";
        assert!(scan_source(Path::new("crates/mapred/src/task.rs"), src).is_empty());
    }

    #[test]
    fn new_pragma_names_parse() {
        for name in ["floatorder", "panicfree", "walltaint", "lockgraph"] {
            let src =
                format!("// clyde-lint: allow({name}, reason=covered by a test)\nfn f() {{}}\n");
            assert!(scan(&src).is_empty(), "{name} pragma should parse");
        }
    }
}
