//! Thread-count invariance: the determinism contract the whole repo leans
//! on, asserted end to end.
//!
//! `MtMapRunner` may execute with any number of *host* OS threads — the
//! paper's simulated cluster still has 6 map slots, and the cost model
//! prices with that — so query results, simulated-time spans (as exported
//! Chrome traces), metric snapshots (wall-clock metrics excluded), query
//! profiles, and flamegraphs must be byte-identical for 1, 2, and 8 host
//! threads, and across repeated runs.

use clyde_common::obs::profiles_json;
use clyde_common::{rowcodec, Obs};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::sync::Arc;

/// The byte-comparable artifacts of one full Q2.1 execution.
struct Artifacts {
    rows: Vec<u8>,
    trace: String,
    metrics: String,
    profile_json: String,
    flamegraph: String,
}

/// One full Q2.1 execution on a fresh cluster; returns the deterministic
/// artifacts (result bytes, chrome trace, wall-free metrics rendering,
/// profile bundle, collapsed flamegraph).
fn run_q21(host_threads: Option<u32>) -> Artifacts {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(0.005, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: false,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    let obs = Obs::enabled();
    let mut clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    if let Some(t) = host_threads {
        clyde = clyde.with_host_threads(t);
    }
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q2.1").unwrap();
    let r = clyde.query(&q).unwrap();
    let metrics: String = obs
        .metrics()
        .snapshot()
        .render()
        .lines()
        .filter(|l| !l.starts_with("mapred.task_wall"))
        .map(|l| format!("{l}\n"))
        .collect();
    Artifacts {
        rows: rowcodec::write_rows(&r.rows),
        trace: obs.chrome_trace(),
        metrics,
        profile_json: obs.with_query_profiles(profiles_json),
        flamegraph: obs.flamegraph(),
    }
}

#[test]
fn q21_invariant_across_host_thread_counts() {
    let a = run_q21(None);
    assert!(!a.rows.is_empty());
    assert!(a.trace.contains("traceEvents"));
    assert!(a.metrics.contains("mapred.map_tasks"));
    assert!(a.profile_json.contains("\"format\":\"clyde-profiles\""));
    assert!(a.flamegraph.contains("map"));
    for t in [1u32, 2, 8] {
        let b = run_q21(Some(t));
        assert_eq!(
            a.rows, b.rows,
            "results must not depend on host threads ({t})"
        );
        assert_eq!(
            a.trace, b.trace,
            "simulated-time spans must not depend on host threads ({t})"
        );
        assert_eq!(
            a.metrics, b.metrics,
            "metric snapshots must not depend on host threads ({t})"
        );
        assert_eq!(
            a.profile_json, b.profile_json,
            "query profiles must not depend on host threads ({t})"
        );
        assert_eq!(
            a.flamegraph, b.flamegraph,
            "flamegraphs must not depend on host threads ({t})"
        );
    }
}

/// The `floatorder` pragmas in `crates/core/src/mtrunner.rs` rest on one
/// claim: thread partials merge in ascending first-morsel order (the runner
/// sorts them before folding), so the fold sequence is a function of the
/// input alone, never of thread scheduling. One host thread *is* input
/// order; odd thread counts tile the morsels unevenly and would expose any
/// schedule-order merge. Byte-compare them.
#[test]
fn merge_order_is_input_order_not_schedule_order() {
    let reference = run_q21(Some(1));
    for t in [3u32, 5, 13] {
        let b = run_q21(Some(t));
        assert_eq!(
            reference.rows, b.rows,
            "merge order leaked into results at {t} threads"
        );
        assert_eq!(
            reference.profile_json, b.profile_json,
            "merge order leaked into profiles at {t} threads"
        );
    }
}

#[test]
fn q21_dual_run_is_byte_identical() {
    let first = run_q21(None);
    let second = run_q21(None);
    assert_eq!(first.rows, second.rows, "result rows");
    assert_eq!(first.trace, second.trace, "chrome trace");
    assert_eq!(first.metrics, second.metrics, "metric snapshot");
    assert_eq!(first.profile_json, second.profile_json, "profile bundle");
    assert_eq!(first.flamegraph, second.flamegraph, "flamegraph");
}
