//! Minimal offline stand-in for `rand` 0.8, bit-compatible where it counts.
//!
//! The SSB generator's seed (46) was calibrated against the byte stream of
//! the real `rand` crate — several downstream tests (the paper's cluster-A
//! OOM set, the "every query returns rows" guarantees) depend on the exact
//! data that stream produces. So this shim is not a lookalike: it
//! reimplements the precise algorithms of `rand` 0.8.5 on x86-64:
//!
//! * [`rngs::StdRng`] is ChaCha12 (RFC 8439 core, 64-bit block counter,
//!   zero nonce) read through `rand_core`'s `BlockRng` word buffer —
//!   four blocks per refill, `next_u64` = two consecutive little-endian
//!   words with the same wraparound rules.
//! * [`SeedableRng::seed_from_u64`] is `rand_core`'s PCG32 (XSH-RR) seed
//!   expansion.
//! * [`Rng::gen_range`] is `UniformInt`'s widening-multiply rejection
//!   sampler, including the per-type choice of 32- vs 64-bit draws and the
//!   modulo vs leading-zeros zone computation.
//!
//! Only the integer surface this workspace uses is provided; floats,
//! distributions, and `thread_rng` are absent.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// `rand_core` 0.6's default: expand the `u64` through PCG32 (XSH-RR)
    /// into the full seed, 4 bytes at a time, little-endian.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true` (matches
    /// `Bernoulli::new`: compare one `u64` draw against `p * 2^64`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

/// A range that knows how to sample a uniform value of `T` from an `Rng`.
pub trait SampleRange<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// `rand` 0.8.5 `uniform_int_impl!`: `$ty` sampled via `$u_large` draws
/// (u32 for ≤32-bit types, u64 otherwise), rejection zone by modulo for
/// 8/16-bit types and by the leading-zeros approximation for wider ones.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident, $wide:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_uniform(
                    self.start,
                    self.end.wrapping_sub(self.start) as $unsigned as $u_large,
                    rng,
                )
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let range = hi.wrapping_sub(lo).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Full integer range: every draw is acceptable.
                    return rng.$gen() as $ty;
                }
                sample_uniform(lo, range, rng)
            }
        }

        /// One rejection-sampling loop, shared by both range forms (they
        /// reduce to the same `range` value and therefore the same draws).
        fn sample_uniform<G: Rng + ?Sized>(low: $ty, range: $u_large, rng: &mut G) -> $ty {
            let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                <$u_large>::MAX - ints_to_reject
            } else {
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v: $u_large = rng.$gen() as $u_large;
                let wide = (v as $wide) * (range as $wide);
                let hi = (wide >> <$u_large>::BITS) as $u_large;
                let lo = wide as $u_large;
                if lo <= zone {
                    return low.wrapping_add(hi as $ty);
                }
            }
        }
    };
}

mod uniform_impls {
    use super::{Rng, SampleRange};
    use std::ops::{Range, RangeInclusive};

    macro_rules! per_type {
        ($($mod_name:ident: ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident, $wide:ty);)*) => {$(
            mod $mod_name {
                use super::*;
                uniform_int_impl!($ty, $unsigned, $u_large, $gen, $wide);
            }
        )*};
    }

    per_type! {
        u8_impl: (u8, u8, u32, next_u32, u64);
        u16_impl: (u16, u16, u32, next_u32, u64);
        u32_impl: (u32, u32, u32, next_u32, u64);
        u64_impl: (u64, u64, u64, next_u64, u128);
        usize_impl: (usize, usize, u64, next_u64, u128);
        i8_impl: (i8, u8, u32, next_u32, u64);
        i16_impl: (i16, u16, u32, next_u32, u64);
        i32_impl: (i32, u32, u32, next_u32, u64);
        i64_impl: (i64, u64, u64, next_u64, u128);
        isize_impl: (isize, usize, u64, next_u64, u128);
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    const BUF_WORDS: usize = 64; // rand_chacha fills four ChaCha blocks at once

    /// `rand` 0.8's `StdRng`: ChaCha12 behind a `BlockRng` word buffer.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    #[inline(always)]
    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..6 {
            // column round
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (w, i) in state.iter_mut().zip(input) {
            *w = w.wrapping_add(i);
        }
        state
    }

    impl StdRng {
        fn refill(&mut self, index: usize) {
            for blk in 0..4 {
                let words = chacha12_block(&self.key, self.counter + blk as u64);
                self.buf[blk * 16..blk * 16 + 16].copy_from_slice(&words);
            }
            self.counter += 4;
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                *k = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill(0);
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        /// `BlockRng::next_u64`: two consecutive words (lo then hi), with
        /// the real crate's split-read behavior at the buffer boundary.
        fn next_u64(&mut self) -> u64 {
            if self.index < BUF_WORDS - 1 {
                let lo = self.buf[self.index];
                let hi = self.buf[self.index + 1];
                self.index += 2;
                u64::from(hi) << 32 | u64::from(lo)
            } else if self.index >= BUF_WORDS {
                self.refill(2);
                u64::from(self.buf[1]) << 32 | u64::from(self.buf[0])
            } else {
                let lo = self.buf[BUF_WORDS - 1];
                self.refill(1);
                u64::from(self.buf[0]) << 32 | u64::from(lo)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..80).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..80).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..80).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha_keystream_matches_rfc_shape() {
        // Structural check: u32 stream and u64 stream interleave the same
        // words (u64 = two consecutive u32s, little-endian low first).
        let mut a = StdRng::seed_from_u64(46);
        let mut b = StdRng::seed_from_u64(46);
        for _ in 0..100 {
            let w0 = a.next_u32();
            let w1 = a.next_u32();
            let d = b.next_u64();
            assert_eq!(d, u64::from(w1) << 32 | u64::from(w0));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 11];
        for _ in 0..2000 {
            let v = rng.gen_range(0..=10i32);
            assert!((0..=10).contains(&v));
            seen[v as usize] = true;
            let u = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&u));
            let w = rng.gen_range(900..=10_500i32);
            assert!((900..=10_500).contains(&w));
            let b = rng.gen_range(0..26u8);
            assert!(b < 26);
        }
        assert!(seen.iter().all(|&s| s), "all 11 discount values reachable");
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 110_000u32;
        let mut counts = [0u32; 11];
        for _ in 0..n {
            counts[rng.gen_range(0..=10i32) as usize] += 1;
        }
        for &c in &counts {
            let expect = n / 11;
            assert!(c.abs_diff(expect) < expect / 10, "count {c} vs {expect}");
        }
    }
}
