//! Plain-text table rendering for the figure binaries.

/// Render an aligned text table: header row + data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Right-align numbers (cells that parse as a float), left-align text.
            if c.parse::<f64>().is_ok() || c.ends_with('x') || c.ends_with('s') {
                line.push_str(&format!("{c:>width$}", width = widths[i]));
            } else {
                line.push_str(&format!("{c:<width$}", width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// `"123.4s"` / `"17.4x"` style numbers.
pub fn secs(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}s")
    } else {
        format!("{v:.1}s")
    }
}

pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Render the `--faults <seed>` degradation table shared by fig7/fig8:
/// per-query recovery actions and the simulated seconds they cost.
pub fn render_fault_impact(impacts: &[crate::harness::FaultImpact]) -> String {
    let rows: Vec<Vec<String>> = impacts
        .iter()
        .map(|i| {
            vec![
                i.query_id.clone(),
                secs(i.clean_s),
                secs(i.faulted_s),
                format!("{:+.1}s", i.faulted_s - i.clean_s),
                i.failed_attempts.to_string(),
                format!("{}/{}", i.speculative_wins, i.speculative_attempts),
                i.dead_nodes.to_string(),
                i.rereplicated_blocks.to_string(),
                secs(i.wasted_s),
            ]
        })
        .collect();
    render_table(
        &[
            "query", "clean", "faulted", "overhead", "retries", "spec w/l", "dead", "rerepl",
            "wasted",
        ],
        &rows,
    )
}

/// Render the cost-model calibration report across a suite of query
/// profiles: one row per (query, job, phase) with the model's share of the
/// priced time, the measured wall share, and the relative drift. Phases
/// past the profile's threshold are flagged; a verdict line closes the
/// report. Wall-bearing — for humans, not for byte-compared artifacts.
pub fn render_calibration(profiles: &[clyde_common::obs::QueryProfile]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut flagged: Vec<String> = Vec::new();
    let mut threshold = clyde_common::obs::DEFAULT_DRIFT_THRESHOLD_PCT;
    for p in profiles {
        threshold = p.drift_threshold_pct;
        for j in &p.jobs {
            for ph in &j.phases {
                let (wall_share, drift, flag) = match ph.drift_pct {
                    Some(d) => (
                        format!("{:.1}%", ph.wall_share * 100.0),
                        format!("{d:+.1}%"),
                        if ph.flagged { "DRIFT" } else { "" },
                    ),
                    None => ("-".to_string(), "-".to_string(), ""),
                };
                if ph.flagged {
                    flagged.push(format!(
                        "{} {} {:+.1}%",
                        p.query,
                        ph.phase.label(),
                        ph.drift_pct.unwrap_or(0.0)
                    ));
                }
                rows.push(vec![
                    p.query.clone(),
                    ph.phase.label().to_string(),
                    format!("{:.2}s", ph.model_s),
                    if ph.drift_pct.is_some() {
                        format!("{:.1}%", ph.model_share * 100.0)
                    } else {
                        "-".to_string()
                    },
                    wall_share,
                    drift,
                    flag.to_string(),
                ]);
            }
        }
    }
    let mut out = render_table(
        &[
            "query", "phase", "model", "model%", "wall%", "drift", "verdict",
        ],
        &rows,
    );
    if flagged.is_empty() {
        out.push_str(&format!(
            "calibration: all phases within {threshold:.0}% of CostParams pricing across {} queries\n",
            profiles.len()
        ));
    } else {
        out.push_str(&format!(
            "calibration: {} phase(s) drift >{threshold:.0}%: {}\n",
            flagged.len(),
            flagged.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["query", "time"],
            &[
                vec!["Q1.1".into(), "12.5s".into()],
                vec!["Q10.10".into(), "3.0s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[2].contains("Q1.1"));
        // Numeric column right-aligned: both time cells end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(15142.3), "15142s");
        assert_eq!(secs(21.46), "21.5s");
        assert_eq!(speedup(38.04), "38.0x");
    }
}
