//! MultiCIF and B-CIF: the CIF-backed Hadoop input format.
//!
//! Three paper mechanisms live here:
//!
//! * **column projection** — the format carries the column list the query
//!   needs (or takes it from `scan.columns` in the job conf), and readers
//!   touch only those files;
//! * **MultiCIF** (Section 5.1) — several row groups are packed into one
//!   *multi-split*, whose parts can be opened independently so each thread
//!   of a multi-threaded map task deserializes its own constituent split;
//!   `MultiSplit::OnePerNode` produces exactly one multi-split per worker,
//!   which combined with the capacity scheduler gives Clydesdale its
//!   one-map-task-per-node execution;
//! * **B-CIF** (Section 5.3) — `ScanMode::Blocks` returns arrays of rows so
//!   the per-record `next()` cost is paid once per block; `ScanMode::Rows`
//!   is the row-at-a-time path used by the block-iteration ablation.

use crate::cif::CifReader;
use crate::encoding::{peek_zone_map, ZONE_HEADER_MAX};
use clyde_common::{ClydeError, Result, RowBlock};
use clyde_dfs::{Dfs, NodeId};
use clyde_mapred::conf::keys;
use clyde_mapred::{
    input::RowsFromBlocks, BlockReader, InputFormat, InputSplit, JobConf, Reader, SplitSpec, TaskIo,
};

/// How rows come out of the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// B-CIF: blocks of up to `rows_per_block` rows.
    Blocks { rows_per_block: usize },
    /// Row-at-a-time through the framework (ablation / Hadoop default).
    Rows,
}

impl Default for ScanMode {
    fn default() -> ScanMode {
        ScanMode::Blocks {
            rows_per_block: 4096,
        }
    }
}

/// How row groups are packed into splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiSplit {
    /// One split per row group (plain CIF).
    Single,
    /// Multi-splits of `k` consecutive groups.
    GroupsPerSplit(usize),
    /// One multi-split per worker node, each containing the groups that node
    /// hosts (Clydesdale's scheduling shape).
    OnePerNode,
}

/// A conjunct usable for zone-map pruning: a qualifying row must have
/// `column` in the inclusive range `[lo, hi]`. A row group whose zone map
/// for `column` is disjoint from the range cannot contribute a single row,
/// so the scan skips it without fetching or decoding any column chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZonePred {
    pub column: String,
    pub lo: i32,
    pub hi: i32,
}

impl ZonePred {
    pub fn new(column: impl Into<String>, lo: i32, hi: i32) -> ZonePred {
        ZonePred {
            column: column.into(),
            lo,
            hi,
        }
    }
}

/// The CIF input format.
pub struct CifInputFormat {
    pub base: String,
    /// Columns to materialize; `None` reads `scan.columns` from the job conf
    /// or falls back to all columns.
    pub columns: Option<Vec<String>>,
    pub mode: ScanMode,
    pub multi: MultiSplit,
    /// Conjunctive range predicates for zone-map block skipping. Pruning
    /// never changes results — it only elides groups no row of which can
    /// pass the predicates.
    pub zone_preds: Vec<ZonePred>,
}

impl CifInputFormat {
    pub fn new(base: impl Into<String>) -> CifInputFormat {
        CifInputFormat {
            base: base.into(),
            columns: None,
            mode: ScanMode::default(),
            multi: MultiSplit::Single,
            zone_preds: Vec::new(),
        }
    }

    pub fn with_columns(mut self, columns: Vec<String>) -> CifInputFormat {
        self.columns = Some(columns);
        self
    }

    pub fn with_mode(mut self, mode: ScanMode) -> CifInputFormat {
        self.mode = mode;
        self
    }

    pub fn with_multi(mut self, multi: MultiSplit) -> CifInputFormat {
        self.multi = multi;
        self
    }

    pub fn with_zone_preds(mut self, preds: Vec<ZonePred>) -> CifInputFormat {
        self.zone_preds = preds;
        self
    }

    /// Zone-map check for one row group: `Ok(true)` means some predicate's
    /// range is provably disjoint from the group's value range and the
    /// group can be skipped. Costs one header-sized read (≤
    /// [`ZONE_HEADER_MAX`] bytes) per checked column.
    fn zone_prunes(&self, reader: &CifReader, group: usize, io: &TaskIo) -> Result<bool> {
        for zp in &self.zone_preds {
            // Unknown columns can't prune (planner bug-proofing, not an error).
            if reader.column_index(&zp.column).is_err() {
                continue;
            }
            let path = reader.meta().column_path(group, &zp.column);
            let len = io.dfs.file_len(&path)?;
            let prefix = io.read_range(&path, 0, len.min(ZONE_HEADER_MAX as u64))?;
            io.stats.add_zone_checked(1);
            if let Some((min, max)) = peek_zone_map(&prefix)? {
                if max < zp.lo || min > zp.hi {
                    io.stats.add_zone_skipped(1);
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn column_indices(&self, reader: &CifReader, conf: &JobConf) -> Result<Vec<usize>> {
        let names: Vec<String> = match (&self.columns, conf.get(keys::SCAN_COLUMNS)) {
            (Some(cols), _) => cols.clone(),
            (None, Some(list)) => list.split(',').map(|s| s.trim().to_string()).collect(),
            (None, None) => reader
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect(),
        };
        names.iter().map(|n| reader.column_index(n)).collect()
    }
}

impl InputFormat for CifInputFormat {
    fn splits(&self, dfs: &Dfs, conf: &JobConf) -> Result<Vec<InputSplit>> {
        let reader = CifReader::open(dfs, &self.base)?;
        let cols = self.column_indices(&reader, conf)?;
        let n_groups = reader.meta().num_groups();
        let mut group_hosts = Vec::with_capacity(n_groups);
        let mut group_bytes = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            group_hosts.push(reader.group_hosts(dfs, g)?);
            group_bytes.push(reader.group_bytes(dfs, g, &cols)?);
        }

        let multi = match self.multi {
            MultiSplit::GroupsPerSplit(k) => {
                let k = conf.get_u64_or(keys::GROUPS_PER_SPLIT, k as u64)? as usize;
                MultiSplit::GroupsPerSplit(k.max(1))
            }
            other => other,
        };

        let packs: Vec<(Vec<usize>, Vec<NodeId>)> = match multi {
            MultiSplit::Single => (0..n_groups)
                .map(|g| (vec![g], group_hosts[g].clone()))
                .collect(),
            MultiSplit::GroupsPerSplit(k) => (0..n_groups)
                .collect::<Vec<_>>()
                .chunks(k)
                .map(|chunk| {
                    let hosts = intersect_hosts(chunk.iter().map(|&g| &group_hosts[g]))
                        .unwrap_or_else(|| group_hosts[chunk[0]].clone());
                    (chunk.to_vec(), hosts)
                })
                .collect(),
            MultiSplit::OnePerNode => {
                let workers = dfs.cluster().num_workers();
                let mut per_node_groups: Vec<Vec<usize>> = vec![Vec::new(); workers];
                let mut per_node_bytes = vec![0u64; workers];
                for g in 0..n_groups {
                    // Prefer hosts holding the group; fall back to any node.
                    let candidates: Vec<usize> = if group_hosts[g].is_empty() {
                        (0..workers).collect()
                    } else {
                        group_hosts[g].iter().map(|n| n.0).collect()
                    };
                    let chosen = candidates
                        .iter()
                        .copied()
                        .min_by_key(|&c| (per_node_bytes[c], c))
                        .expect("candidates never empty");
                    per_node_groups[chosen].push(g);
                    per_node_bytes[chosen] += group_bytes[g];
                }
                per_node_groups
                    .into_iter()
                    .enumerate()
                    .filter(|(_, gs)| !gs.is_empty())
                    .map(|(node, gs)| (gs, vec![NodeId(node)]))
                    .collect()
            }
        };

        Ok(packs
            .into_iter()
            .enumerate()
            .map(|(index, (groups, hosts))| {
                let bytes = groups.iter().map(|&g| group_bytes[g]).sum();
                InputSplit {
                    index,
                    spec: SplitSpec::Groups {
                        base: self.base.clone(),
                        groups,
                    },
                    hosts,
                    bytes,
                }
            })
            .collect())
    }

    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
        let SplitSpec::Groups { base, groups } = &split.spec else {
            return Err(ClydeError::MapReduce("CIF expects group splits".into()));
        };
        let &group = groups.get(part).ok_or_else(|| {
            ClydeError::MapReduce(format!(
                "part {part} out of range for multi-split of {} groups",
                groups.len()
            ))
        })?;
        let reader = CifReader::open(&io.dfs, base)?;
        // Re-resolve columns at the task (conf travels via the format).
        let cols: Vec<usize> = match &self.columns {
            Some(names) => names
                .iter()
                .map(|n| reader.column_index(n))
                .collect::<Result<_>>()?,
            None => (0..reader.schema().len()).collect(),
        };
        // Zone-map pruning: decide from column-chunk headers alone whether
        // this group can contain qualifying rows; if not, hand back an
        // empty reader of the requested shape.
        if !self.zone_preds.is_empty() && self.zone_prunes(&reader, group, io)? {
            return Ok(match self.mode {
                ScanMode::Blocks { .. } => {
                    Reader::Blocks(Box::new(SlicedBlockReader::new(RowBlock::default(), 1)))
                }
                ScanMode::Rows => Reader::Rows(Box::new(RowsFromBlocks::new(Box::new(
                    SlicedBlockReader::new(RowBlock::default(), 1),
                )))),
            });
        }
        let block = reader.read_group(io, group, &cols)?;
        match self.mode {
            ScanMode::Blocks { rows_per_block } => Ok(Reader::Blocks(Box::new(
                SlicedBlockReader::new(block, rows_per_block.max(1)),
            ))),
            ScanMode::Rows => Ok(Reader::Rows(Box::new(RowsFromBlocks::new(Box::new(
                SlicedBlockReader::new(block, 4096),
            ))))),
        }
    }
}

/// Serves one decoded row group as blocks of at most `rows_per_block` rows.
pub struct SlicedBlockReader {
    block: RowBlock,
    pos: usize,
    rows_per_block: usize,
}

impl SlicedBlockReader {
    pub fn new(block: RowBlock, rows_per_block: usize) -> SlicedBlockReader {
        SlicedBlockReader {
            block,
            pos: 0,
            rows_per_block,
        }
    }
}

impl BlockReader for SlicedBlockReader {
    fn next_block(&mut self) -> Result<Option<RowBlock>> {
        if self.pos >= self.block.len() {
            return Ok(None);
        }
        let end = (self.pos + self.rows_per_block).min(self.block.len());
        // Whole-group fast path avoids the copy.
        let out = if self.pos == 0 && end == self.block.len() {
            std::mem::take(&mut self.block)
        } else {
            self.block.slice(self.pos, end)
        };
        self.pos = end.max(self.pos + out.len());
        Ok(Some(out))
    }
}

fn intersect_hosts<'a>(mut sets: impl Iterator<Item = &'a Vec<NodeId>>) -> Option<Vec<NodeId>> {
    let first = sets.next()?.clone();
    let mut acc = first;
    for s in sets {
        acc.retain(|n| s.contains(n));
    }
    if acc.is_empty() {
        None
    } else {
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cif::CifWriter;
    use clyde_common::{row, Field, Row, Schema};
    use std::sync::Arc;

    fn make_table(dfs: &Arc<Dfs>, base: &str, rows: usize, rpg: u64) {
        let schema = Schema::new(vec![Field::i32("a"), Field::i64("b"), Field::str("c")]);
        let mut w = CifWriter::new(Arc::clone(dfs), base, schema, rpg).unwrap();
        for i in 0..rows {
            w.append(&row![
                i as i32,
                (i * 2) as i64,
                if i % 3 == 0 { "x" } else { "y" }
            ])
            .unwrap();
        }
        w.close().unwrap();
    }

    fn drain_rows(fmt: &CifInputFormat, dfs: &Arc<Dfs>) -> Vec<Row> {
        let conf = JobConf::new();
        let splits = fmt.splits(dfs, &conf).unwrap();
        let io = TaskIo::client(Arc::clone(dfs));
        let mut rows = Vec::new();
        for s in &splits {
            for part in 0..s.spec.num_parts() {
                match fmt.open(s, part, &io).unwrap() {
                    Reader::Blocks(mut b) => {
                        while let Some(blk) = b.next_block().unwrap() {
                            for i in 0..blk.len() {
                                rows.push(blk.row(i));
                            }
                        }
                    }
                    Reader::Rows(mut r) => {
                        while let Some((_, v)) = r.next().unwrap() {
                            rows.push(v);
                        }
                    }
                }
            }
        }
        rows
    }

    #[test]
    fn single_split_per_group() {
        let dfs = Dfs::for_tests(4);
        make_table(&dfs, "/t", 20, 5);
        let fmt = CifInputFormat::new("/t");
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        assert_eq!(splits.len(), 4);
        assert!(splits.iter().all(|s| !s.hosts.is_empty()));
        assert!(splits.iter().all(|s| s.bytes > 0));
        let rows = drain_rows(&fmt, &dfs);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[7], row![7i32, 14i64, "y"]);
    }

    #[test]
    fn multi_split_packs_groups() {
        let dfs = Dfs::for_tests(4);
        make_table(&dfs, "/t", 40, 5); // 8 groups
        let fmt = CifInputFormat::new("/t").with_multi(MultiSplit::GroupsPerSplit(3));
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        assert_eq!(splits.len(), 3); // 3+3+2
        assert_eq!(splits[0].spec.num_parts(), 3);
        assert_eq!(splits[2].spec.num_parts(), 2);
        assert_eq!(drain_rows(&fmt, &dfs).len(), 40);
    }

    #[test]
    fn one_split_per_node_covers_everything_locally() {
        let dfs = Dfs::for_tests(3);
        make_table(&dfs, "/t", 60, 5); // 12 groups over 3 nodes
        let fmt = CifInputFormat::new("/t").with_multi(MultiSplit::OnePerNode);
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        assert!(splits.len() <= 3);
        // Each split is pinned to exactly one node that hosts its groups.
        let mut total_groups = 0;
        for s in &splits {
            assert_eq!(s.hosts.len(), 1);
            total_groups += s.spec.num_parts();
        }
        assert_eq!(total_groups, 12);
        assert_eq!(drain_rows(&fmt, &dfs).len(), 60);
    }

    #[test]
    fn projection_via_struct_and_conf() {
        let dfs = Dfs::for_tests(3);
        make_table(&dfs, "/t", 10, 10);
        // Via struct.
        let fmt = CifInputFormat::new("/t").with_columns(vec!["b".into()]);
        let rows = drain_rows(&fmt, &dfs);
        assert_eq!(rows[4], row![8i64]);
        // Via conf (splits only; open() uses struct columns or all).
        let mut conf = JobConf::new();
        conf.set(keys::SCAN_COLUMNS, "a, c");
        let fmt2 = CifInputFormat::new("/t");
        let splits = fmt2.splits(&dfs, &conf).unwrap();
        // Split byte estimate covers only the projected columns.
        let full = CifInputFormat::new("/t")
            .splits(&dfs, &JobConf::new())
            .unwrap();
        assert!(splits[0].bytes < full[0].bytes);
    }

    #[test]
    fn rows_mode_yields_rows() {
        let dfs = Dfs::for_tests(2);
        make_table(&dfs, "/t", 12, 4);
        let fmt = CifInputFormat::new("/t").with_mode(ScanMode::Rows);
        let rows = drain_rows(&fmt, &dfs);
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn block_mode_respects_block_size() {
        let dfs = Dfs::for_tests(2);
        make_table(&dfs, "/t", 10, 10);
        let fmt = CifInputFormat::new("/t").with_mode(ScanMode::Blocks { rows_per_block: 3 });
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        let io = TaskIo::client(Arc::clone(&dfs));
        let mut reader = fmt.open(&splits[0], 0, &io).unwrap().into_blocks().unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = reader.next_block().unwrap() {
            sizes.push(b.len());
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn zone_preds_skip_disjoint_groups() {
        let dfs = Dfs::for_tests(2);
        // 20 rows in 4 groups of 5: column "a" is 0..4, 5..9, 10..14, 15..19.
        make_table(&dfs, "/t", 20, 5);
        let io = TaskIo::client(Arc::clone(&dfs));
        let fmt = CifInputFormat::new("/t").with_zone_preds(vec![ZonePred::new("a", 7, 12)]);
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        let mut rows = Vec::new();
        for s in &splits {
            for part in 0..s.spec.num_parts() {
                let mut b = fmt.open(s, part, &io).unwrap().into_blocks().unwrap();
                while let Some(blk) = b.next_block().unwrap() {
                    for i in 0..blk.len() {
                        rows.push(blk.row(i));
                    }
                }
            }
        }
        // Groups 0 and 3 are disjoint from [7,12] and were skipped; groups
        // 1 and 2 survive whole (pruning is group-granular, not row-level).
        assert_eq!(rows.len(), 10);
        assert_eq!(io.stats.zone_skipped(), 2);
        assert_eq!(io.stats.zone_checked(), 4);
        // A non-i32 or unknown column never prunes.
        let fmt2 = CifInputFormat::new("/t")
            .with_zone_preds(vec![ZonePred::new("c", 0, 0), ZonePred::new("nope", 0, 0)]);
        let rows2 = drain_rows(&fmt2, &dfs);
        assert_eq!(rows2.len(), 20);
    }

    #[test]
    fn zone_skip_in_rows_mode_yields_empty_reader() {
        let dfs = Dfs::for_tests(2);
        make_table(&dfs, "/t", 10, 5);
        let io = TaskIo::client(Arc::clone(&dfs));
        let fmt = CifInputFormat::new("/t")
            .with_mode(ScanMode::Rows)
            .with_zone_preds(vec![ZonePred::new("a", 100, 200)]);
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        let mut n = 0;
        for s in &splits {
            for part in 0..s.spec.num_parts() {
                let mut r = fmt.open(s, part, &io).unwrap().into_rows().unwrap();
                while r.next().unwrap().is_some() {
                    n += 1;
                }
            }
        }
        assert_eq!(n, 0);
        assert_eq!(io.stats.zone_skipped(), 2);
    }

    #[test]
    fn open_bad_part_errors() {
        let dfs = Dfs::for_tests(2);
        make_table(&dfs, "/t", 4, 4);
        let fmt = CifInputFormat::new("/t");
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        let io = TaskIo::client(Arc::clone(&dfs));
        assert!(fmt.open(&splits[0], 5, &io).is_err());
    }
}
