//! Plain-text table rendering for the figure binaries.

/// Render an aligned text table: header row + data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Right-align numbers (cells that parse as a float), left-align text.
            if c.parse::<f64>().is_ok() || c.ends_with('x') || c.ends_with('s') {
                line.push_str(&format!("{c:>width$}", width = widths[i]));
            } else {
                line.push_str(&format!("{c:<width$}", width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// `"123.4s"` / `"17.4x"` style numbers.
pub fn secs(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}s")
    } else {
        format!("{v:.1}s")
    }
}

pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Render the `--faults <seed>` degradation table shared by fig7/fig8:
/// per-query recovery actions and the simulated seconds they cost.
pub fn render_fault_impact(impacts: &[crate::harness::FaultImpact]) -> String {
    let rows: Vec<Vec<String>> = impacts
        .iter()
        .map(|i| {
            vec![
                i.query_id.clone(),
                secs(i.clean_s),
                secs(i.faulted_s),
                format!("{:+.1}s", i.faulted_s - i.clean_s),
                i.failed_attempts.to_string(),
                format!("{}/{}", i.speculative_wins, i.speculative_attempts),
                i.dead_nodes.to_string(),
                i.rereplicated_blocks.to_string(),
                secs(i.wasted_s),
            ]
        })
        .collect();
    render_table(
        &[
            "query", "clean", "faulted", "overhead", "retries", "spec w/l", "dead", "rerepl",
            "wasted",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["query", "time"],
            &[
                vec!["Q1.1".into(), "12.5s".into()],
                vec!["Q10.10".into(), "3.0s".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[2].contains("Q1.1"));
        // Numeric column right-aligned: both time cells end at same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn number_formats() {
        assert_eq!(secs(15142.3), "15142s");
        assert_eq!(secs(21.46), "21.5s");
        assert_eq!(speedup(38.04), "38.0x");
    }
}
