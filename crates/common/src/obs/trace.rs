//! Chrome trace-event export: turn recorded spans into deterministic JSON
//! loadable by Perfetto / `chrome://tracing`, and project a [`JobHistory`]
//! into the span recorder.
//!
//! Layout: one trace *process* per job; thread 0 is the job/stage lane and
//! each (task kind, node, slot) gets its own lane. All timestamps are
//! simulated microseconds, so two identical runs serialize byte-identically.

use super::history::{JobHistory, TaskKind, TaskLane};
use super::json::escape;
use super::span::{us, Span, SpanId, SpanKind, SpanRecorder};
use std::collections::BTreeMap;

/// Project a job history into the recorder as a span tree. Returns the
/// (pid, job root span) pair, or `None` when the recorder is disabled.
pub fn record_job(rec: &SpanRecorder, h: &JobHistory) -> Option<(u32, SpanId)> {
    if !rec.is_enabled() {
        return None;
    }
    let pid = rec.new_process(&h.name);
    rec.name_thread(pid, 0, "job");

    // Deterministic lane numbering: map lanes first, then reduce lanes,
    // ordered by (node, slot).
    let mut lanes: BTreeMap<(TaskKind, usize, u32), u32> = BTreeMap::new();
    for t in &h.tasks {
        lanes.entry((t.kind, t.node, t.slot)).or_insert(0);
    }
    for (i, ((kind, node, slot), tid)) in lanes.iter_mut().enumerate() {
        *tid = i as u32 + 1;
        rec.name_thread(
            pid,
            *tid,
            &format!("{} node{} slot{}", kind.label(), node, slot),
        );
    }

    // Server-scheduled jobs start at their admission time on the shared
    // timeline; solo runs keep `t0_s == 0` and serialize exactly as before.
    let t0_us = us(h.t0_s);
    let total_us = us(h.end_s()).saturating_sub(t0_us);
    let root = rec.span(
        None,
        SpanKind::Job,
        &h.name,
        pid,
        0,
        t0_us,
        total_us,
        vec![
            ("map_tasks".into(), h.lanes(TaskKind::Map).len().to_string()),
            (
                "reduce_tasks".into(),
                h.lanes(TaskKind::Reduce).len().to_string(),
            ),
            ("map_concurrency".into(), h.map_concurrency.to_string()),
            ("scan_locality".into(), format!("{:.4}", h.locality)),
            ("split_locality".into(), format!("{:.4}", h.split_locality)),
            ("failed_attempts".into(), h.failed_attempts.to_string()),
        ]
        .into_iter()
        .chain(server_args(h))
        .chain(recovery_args(h))
        .collect(),
    )?;

    // Stage band on the job lane: setup | map | shuffle | reduce | overhead.
    let mut t = h.t0_s;
    let mut stage_ids: BTreeMap<TaskKind, SpanId> = BTreeMap::new();
    for (name, dur, kind) in [
        ("setup", h.setup_s, None),
        ("map", h.map_s, Some(TaskKind::Map)),
        ("shuffle", h.shuffle_s, None),
        ("reduce", h.reduce_s, Some(TaskKind::Reduce)),
        ("overhead", h.overhead_s, None),
    ] {
        if dur <= 0.0 {
            continue;
        }
        let mut args = Vec::new();
        if name == "shuffle" {
            args.push(("bytes".into(), h.shuffle_bytes.to_string()));
        }
        if name == "reduce" && h.merge_runs > 0 {
            args.push(("merged_runs".into(), h.merge_runs.to_string()));
        }
        if name == "map" && h.combine_input_records > 0 {
            args.push(("combine_in".into(), h.combine_input_records.to_string()));
            args.push(("combine_out".into(), h.combine_output_records.to_string()));
        }
        let id = rec.span(
            Some(root),
            SpanKind::Stage,
            name,
            pid,
            0,
            us(t),
            us(t + dur).saturating_sub(us(t)),
            args,
        )?;
        if let Some(k) = kind {
            stage_ids.insert(k, id);
        }
        t += dur;
    }

    for task in &h.tasks {
        let tid = lanes[&(task.kind, task.node, task.slot)];
        let parent = stage_ids.get(&task.kind).copied().or(Some(root));
        let t_start = us(task.start_s);
        let t_dur = us(task.finish_s()).saturating_sub(t_start);
        let name = if task.speculative {
            format!("{} {} (backup)", task.kind.label(), task.index)
        } else {
            format!("{} {}", task.kind.label(), task.index)
        };
        let tspan = rec.span(
            parent,
            SpanKind::Task,
            &name,
            pid,
            tid,
            t_start,
            t_dur,
            task_args(task),
        )?;
        for ph in &task.phases {
            if ph.dur_s <= 0.0 {
                continue;
            }
            // Clamp phase intervals inside the task span so rounding never
            // breaks parent/child nesting in the viewer.
            let p_start = us(ph.start_s).clamp(t_start, t_start + t_dur);
            let p_end = us(ph.start_s + ph.dur_s).clamp(p_start, t_start + t_dur);
            let mut args = Vec::new();
            if let Some(note) = &ph.note {
                args.push(("note".into(), note.clone()));
            }
            rec.span(
                Some(tspan),
                SpanKind::Phase,
                ph.phase.label(),
                pid,
                tid,
                p_start,
                p_end - p_start,
                args,
            );
        }
    }
    Some((pid, root))
}

/// Job-server args for the job span, emitted only for server-scheduled jobs
/// (non-empty tenant) so solo-run traces are byte-identical to before.
fn server_args(h: &JobHistory) -> Vec<(String, String)> {
    let mut args = Vec::new();
    if !h.tenant.is_empty() {
        args.push(("tenant".into(), h.tenant.clone()));
        args.push(("admitted_s".into(), format!("{:.3}", h.t0_s)));
    }
    args
}

/// Recovery-action args for the job span, emitted only when an action
/// actually fired so clean-run traces are byte-identical to before.
fn recovery_args(h: &JobHistory) -> Vec<(String, String)> {
    let mut args = Vec::new();
    if h.speculative_attempts > 0 {
        args.push((
            "speculative_attempts".into(),
            h.speculative_attempts.to_string(),
        ));
        args.push(("speculative_wins".into(), h.speculative_wins.to_string()));
    }
    if h.blacklisted_nodes > 0 {
        args.push(("blacklisted_nodes".into(), h.blacklisted_nodes.to_string()));
    }
    if h.dead_nodes > 0 {
        args.push(("dead_nodes".into(), h.dead_nodes.to_string()));
    }
    if h.rereplicated_blocks > 0 {
        args.push((
            "rereplicated_blocks".into(),
            h.rereplicated_blocks.to_string(),
        ));
    }
    args
}

fn task_args(task: &TaskLane) -> Vec<(String, String)> {
    let mut args = vec![
        ("node".into(), task.node.to_string()),
        ("slot".into(), task.slot.to_string()),
        ("locality".into(), format!("{:.4}", task.locality())),
    ];
    if task.local_bytes + task.remote_bytes > 0 {
        args.push(("local_bytes".into(), task.local_bytes.to_string()));
        args.push(("remote_bytes".into(), task.remote_bytes.to_string()));
    }
    if task.emit_records > 0 {
        args.push(("emit_records".into(), task.emit_records.to_string()));
        args.push(("emit_bytes".into(), task.emit_bytes.to_string()));
    }
    args
}

/// Serialize recorder contents as Chrome trace-event JSON.
///
/// Events are ordered: process metadata (by pid), thread metadata (by pid,
/// tid), then complete ("X") events sorted by (pid, tid, ts, -dur, id) —
/// which makes `ts` monotone non-decreasing within every track and keeps
/// output byte-stable across runs.
pub fn chrome_trace(rec: &SpanRecorder) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut processes = rec.processes();
    processes.sort_by_key(|p| p.0);
    for (pid, name) in &processes {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
        events.push(format!(
            r#"{{"name":"process_sort_index","ph":"M","pid":{pid},"tid":0,"args":{{"sort_index":{pid}}}}}"#
        ));
    }
    let mut threads = rec.threads();
    threads.sort_by_key(|t| (t.0, t.1));
    for (pid, tid, name) in &threads {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            escape(name)
        ));
        events.push(format!(
            r#"{{"name":"thread_sort_index","ph":"M","pid":{pid},"tid":{tid},"args":{{"sort_index":{tid}}}}}"#
        ));
    }

    let mut spans = rec.spans();
    spans.sort_by(|a, b| {
        (a.pid, a.tid, a.ts_us, std::cmp::Reverse(a.dur_us), a.id.0).cmp(&(
            b.pid,
            b.tid,
            b.ts_us,
            std::cmp::Reverse(b.dur_us),
            b.id.0,
        ))
    });
    for s in &spans {
        events.push(event_json(s));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn event_json(s: &Span) -> String {
    let mut args = String::new();
    for (i, (k, v)) in s.args.iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        args.push_str(&format!(r#""{}":"{}""#, escape(k), escape(v)));
    }
    format!(
        r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{{}}}}}"#,
        escape(&s.name),
        s.kind.cat(),
        s.ts_us,
        s.dur_us,
        s.pid,
        s.tid,
        args
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::history::{Phase, PhaseSlice};
    use crate::obs::json;

    fn sample_history() -> JobHistory {
        let task = |index: usize, node: usize, start: f64, dur: f64| TaskLane {
            index,
            kind: TaskKind::Map,
            node,
            slot: 0,
            start_s: start,
            dur_s: dur,
            local_bytes: 1000,
            remote_bytes: 0,
            emit_records: 5,
            emit_bytes: 50,
            wall_ns: 123,
            speculative: false,
            phases: vec![
                PhaseSlice {
                    phase: Phase::Setup,
                    start_s: start,
                    dur_s: 0.5,
                    note: None,
                },
                PhaseSlice {
                    phase: Phase::Scan,
                    start_s: start + 0.5,
                    dur_s: dur - 0.5,
                    note: Some("1000 B".into()),
                },
            ],
        };
        JobHistory {
            name: "job-x".into(),
            setup_s: 1.0,
            map_s: 10.0,
            overhead_s: 2.0,
            map_concurrency: 1,
            locality: 1.0,
            split_locality: 1.0,
            tasks: vec![task(0, 0, 1.0, 10.0), task(1, 1, 1.0, 8.0)],
            ..JobHistory::default()
        }
    }

    #[test]
    fn record_job_builds_span_tree() {
        let rec = SpanRecorder::enabled();
        let (pid, root) = record_job(&rec, &sample_history()).unwrap();
        let spans = rec.spans();
        // 1 job + 3 stages (setup/map/overhead) + 2 tasks + 4 phases.
        assert_eq!(spans.len(), 10);
        let job = &spans[root.0 as usize];
        assert_eq!(job.kind, SpanKind::Job);
        assert_eq!(job.dur_us, 13_000_000);
        assert_eq!(job.pid, pid);
        // Tasks parent to the map stage, phases to their task.
        let tasks: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::Task).collect();
        assert_eq!(tasks.len(), 2);
        let map_stage = spans
            .iter()
            .find(|s| s.kind == SpanKind::Stage && s.name == "map")
            .unwrap();
        assert!(tasks.iter().all(|t| t.parent == Some(map_stage.id)));
        for t in &tasks {
            let phases: Vec<&Span> = spans
                .iter()
                .filter(|s| s.parent == Some(t.id) && s.kind == SpanKind::Phase)
                .collect();
            assert_eq!(phases.len(), 2);
            // Nesting: phases stay inside the task interval.
            for p in phases {
                assert!(p.ts_us >= t.ts_us && p.end_us() <= t.end_us());
            }
        }
        // Lanes: job lane 0 plus one lane per (node, slot).
        assert_eq!(rec.threads().len(), 3);
    }

    #[test]
    fn recovery_actions_appear_in_job_args_and_backup_lanes() {
        let mut h = sample_history();
        h.speculative_attempts = 2;
        h.speculative_wins = 1;
        h.rereplicated_blocks = 3;
        h.tasks[1].speculative = true;
        let rec = SpanRecorder::enabled();
        let (_, root) = record_job(&rec, &h).unwrap();
        let spans = rec.spans();
        let job = &spans[root.0 as usize];
        let arg = |k: &str| {
            job.args
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(arg("speculative_attempts").as_deref(), Some("2"));
        assert_eq!(arg("speculative_wins").as_deref(), Some("1"));
        assert_eq!(arg("rereplicated_blocks").as_deref(), Some("3"));
        assert_eq!(arg("blacklisted_nodes"), None, "zero counters stay absent");
        assert!(spans.iter().any(|s| s.name == "map 1 (backup)"));
        assert!(spans.iter().any(|s| s.name == "map 0"));
    }

    #[test]
    fn chrome_trace_is_valid_and_monotone() {
        let rec = SpanRecorder::enabled();
        record_job(&rec, &sample_history()).unwrap();
        let text = chrome_trace(&rec);
        let doc = json::parse(&text).expect("trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut last: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph != "X" {
                continue;
            }
            let pid = e.get("pid").unwrap().as_num().unwrap() as u64;
            let tid = e.get("tid").unwrap().as_num().unwrap() as u64;
            let ts = e.get("ts").unwrap().as_num().unwrap();
            let prev = last.insert((pid, tid), ts);
            if let Some(prev) = prev {
                assert!(ts >= prev, "ts must be monotone within a track");
            }
        }
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let render = || {
            let rec = SpanRecorder::enabled();
            record_job(&rec, &sample_history()).unwrap();
            chrome_trace(&rec)
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn disabled_recorder_produces_empty_trace() {
        let rec = SpanRecorder::disabled();
        assert!(record_job(&rec, &sample_history()).is_none());
        let text = chrome_trace(&rec);
        assert!(json::parse(&text).is_ok());
    }
}
