//! Storage-format explorer: the same table in CIF, RCFile, and text.
//!
//! Loads one SSB fact table in all three formats and compares (a) stored
//! bytes (the paper's 600 GB text vs 334 GB Multi-CIF observation at
//! SF1000) and (b) the bytes a projected scan actually reads — the I/O
//! saving behind CIF and RCFile's column skipping.
//!
//! ```text
//! cargo run --example format_explorer --release
//! ```

use clyde_columnar::{CifReader, RcFileReader};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::TaskIo;
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use std::sync::Arc;

fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(3),
        DfsOptions {
            block_size: 4 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let gen = SsbGen::new(0.02, 46);
    println!(
        "loading lineorder ({} rows) in CIF, RCFile, and text...",
        gen.num_lineorders()
    );
    let ds = loader::load(
        &dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 20_000,
            cif: true,
            rcfile: true,
            text: true,
            cluster_by_date: true,
        },
    )
    .expect("load failed");

    println!("\nstored size of the fact table (17 columns):");
    println!("  text    {}", mb(ds.fact_bytes_text));
    println!("  rcfile  {}", mb(ds.fact_bytes_rc));
    println!("  cif     {}", mb(ds.fact_bytes_cif));
    println!("  (paper at SF1000: 600 GB text vs ~558 GB RCFile vs 334 GB Multi-CIF)");

    // A Q2.1-style projection: 4 of 17 columns.
    let cols = ["lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"];
    println!("\nbytes read scanning only {cols:?}:");

    let cif = CifReader::open(&dfs, &layout.fact_cif()).expect("cif open");
    let idx: Vec<usize> = cols.iter().map(|c| cif.column_index(c).unwrap()).collect();
    let io = TaskIo::client(Arc::clone(&dfs));
    for g in 0..cif.meta().num_groups() {
        cif.read_group(&io, g, &idx).expect("cif scan");
    }
    println!(
        "  cif     {}  ({:.0}% of stored)",
        mb(io.stats.total()),
        io.stats.total() as f64 / ds.fact_bytes_cif as f64 * 100.0
    );

    let rc = RcFileReader::open(&dfs, &layout.table_rc("lineorder")).expect("rc open");
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| rc.schema().index_of(c).unwrap())
        .collect();
    let io = TaskIo::client(Arc::clone(&dfs));
    for g in 0..rc.meta().num_groups() {
        rc.read_group(&io, g, &idx).expect("rc scan");
    }
    println!(
        "  rcfile  {}  ({:.0}% of stored)",
        mb(io.stats.total()),
        io.stats.total() as f64 / ds.fact_bytes_rc as f64 * 100.0
    );

    println!(
        "  text    {}  (100% — row format always reads everything)",
        mb(ds.fact_bytes_text)
    );

    // Locality: CIF row groups have a common host for all their columns.
    let hosts = cif.group_hosts(&dfs, 0).expect("hosts");
    println!(
        "\nCIF co-location: row group 0's {} column files share {} replica node(s): {:?}",
        cif.schema().len(),
        hosts.len(),
        hosts
    );
}
