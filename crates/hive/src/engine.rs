//! The Hive baseline engine: multi-stage plan construction and execution.

use crate::mapjoin::{build_and_publish, joined_schema, MapJoinRunner};
use crate::repartition::{RepartitionMapper, RepartitionReducer};
use crate::stages::{EmitValues, FoldValues, GroupByMapper, OrderByMapper};
use crate::union::TaggedUnionInputFormat;
use clyde_columnar::RcFileInputFormat;
use clyde_common::obs::Obs;
use clyde_common::{ClydeError, Result, Row};
use clyde_dfs::Dfs;
use clyde_mapred::engine::ClientArtifacts;
use clyde_mapred::formats::RowBinInputFormat;
use clyde_mapred::runner::RowMapRunner;
use clyde_mapred::{CostParams, Engine, InputFormat, JobCost, JobProfile, JobSpec, OutputSpec};
use clyde_ssb::loader::SsbLayout;
use clyde_ssb::queries::StarQuery;
use clyde_ssb::schema as ssb_schema;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which join plan the planner emits (paper Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Sort-merge "common join": both sides shuffled to reducers.
    Repartition,
    /// Broadcast hash join via the distributed cache (Figure 6).
    MapJoin,
}

impl JoinStrategy {
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::Repartition => "repartition",
            JoinStrategy::MapJoin => "mapjoin",
        }
    }
}

/// Execution report of one stage (one MapReduce job).
#[derive(Debug)]
pub struct StageReport {
    pub name: String,
    pub profile: JobProfile,
    pub cost: JobCost,
}

/// The result of a Hive query: final rows plus the per-stage reports the
/// figure harness extrapolates.
#[derive(Debug)]
pub struct HiveResult {
    pub rows: Vec<Row>,
    pub stages: Vec<StageReport>,
}

impl HiveResult {
    /// Total simulated cost across all stages.
    pub fn total_cost(&self) -> JobCost {
        self.stages
            .iter()
            .fold(JobCost::default(), |acc, s| acc.add(&s.cost))
    }

    pub fn total_s(&self) -> f64 {
        self.total_cost().total_s()
    }
}

/// The baseline engine.
pub struct Hive {
    engine: Engine,
    layout: SsbLayout,
    strategy: JoinStrategy,
    run_seq: AtomicU64,
}

impl Hive {
    pub fn new(dfs: Arc<Dfs>, layout: SsbLayout, strategy: JoinStrategy) -> Hive {
        Hive {
            engine: Engine::new(dfs),
            layout,
            strategy,
            run_seq: AtomicU64::new(0),
        }
    }

    pub fn with_params(
        dfs: Arc<Dfs>,
        layout: SsbLayout,
        strategy: JoinStrategy,
        params: CostParams,
    ) -> Hive {
        Hive {
            engine: Engine::with_params(dfs, params),
            layout,
            strategy,
            run_seq: AtomicU64::new(0),
        }
    }

    /// Attach an observability hub (chainable): every stage job records its
    /// history, spans, and counters there.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Hive {
        self.engine.set_obs(obs);
        self
    }

    pub fn obs(&self) -> &Arc<Obs> {
        self.engine.obs()
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn strategy(&self) -> JoinStrategy {
        self.strategy
    }

    /// Execute a star query as Hive would: one MapReduce job per dimension
    /// join, a group-by job, and an order-by job.
    pub fn query(&self, query: &StarQuery) -> Result<HiveResult> {
        query.validate()?;
        let cluster = self.engine.dfs().cluster().clone();
        let run = self.run_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = format!("{}/tmp/hive-{}-run{run}", self.layout.root, query.id);

        let fact_schema = ssb_schema::lineorder_schema();
        let scan_cols = query.fact_columns();
        let scan_idx: Vec<usize> = scan_cols
            .iter()
            .map(|c| fact_schema.index_of(c))
            .collect::<Result<_>>()?;
        let mut cur_schema = fact_schema.project(&scan_idx);
        let mut cur_input: Arc<dyn InputFormat> = Arc::new(
            RcFileInputFormat::new(self.layout.table_rc(ssb_schema::LINEORDER))
                .with_columns(scan_cols),
        );

        let mut stages: Vec<StageReport> = Vec::new();
        // Result-cache lineage: each stage's fingerprint seeds the next
        // stage's identity, so chained stages stay cacheable even though
        // their physical inputs live in this run's unique tmp directory.
        // The base stage fingerprints its real (fact/dimension) splits, so
        // fact roll-in/roll-out re-keys the whole chain. Known limitation:
        // mapjoin dimension tables ride the distributed cache, not splits,
        // so editing a dimension file in place is not detected — dimension
        // data is immutable in this workload.
        let mut lineage: Option<u64> = None;

        // --- One join stage per dimension, in query order. ---
        for (i, join) in query.joins.iter().enumerate() {
            let out_dir = format!("{tmp}/join{i}");
            let fact_preds = if i == 0 {
                query.fact_preds.clone()
            } else {
                Vec::new()
            };
            let stage_name = format!(
                "hive-{}-{}-join-{}",
                query.id,
                self.strategy.label(),
                join.dimension
            );
            let (mut spec, client) = match self.strategy {
                JoinStrategy::MapJoin => {
                    let cache_key = format!("{stage_name}.hashtable");
                    let (client, mem) =
                        build_and_publish(self.engine.dfs(), &self.layout, join, &cache_key)?;
                    let runner = MapJoinRunner {
                        cache_key,
                        fk_idx: cur_schema.index_of(&join.fk)?,
                        fact_preds,
                        input_schema: cur_schema.clone(),
                        table_mem_bytes: mem,
                    };
                    let mut spec =
                        JobSpec::new(stage_name, Arc::clone(&cur_input), Arc::new(runner));
                    spec.output = OutputSpec::DfsDir(out_dir.clone());
                    spec.reuse_jvm = false;
                    (spec, client)
                }
                JoinStrategy::Repartition => {
                    // Dimension-side scan: pk + aux + predicate columns.
                    let dim_schema = ssb_schema::schema_of(&join.dimension).ok_or_else(|| {
                        ClydeError::Plan(format!("unknown dimension {}", join.dimension))
                    })?;
                    let mut dim_cols: Vec<String> = vec![join.pk.clone()];
                    for a in &join.aux {
                        if !dim_cols.contains(a) {
                            dim_cols.push(a.clone());
                        }
                    }
                    join.predicate.columns(&mut dim_cols);
                    let dim_scan_idx: Vec<usize> = dim_cols
                        .iter()
                        .map(|c| dim_schema.index_of(c))
                        .collect::<Result<_>>()?;
                    let dim_scan_schema = dim_schema.project(&dim_scan_idx);
                    let dim_input: Arc<dyn InputFormat> = Arc::new(
                        RcFileInputFormat::new(self.layout.table_rc(&join.dimension))
                            .with_columns(dim_cols.clone()),
                    );
                    let mapper = RepartitionMapper {
                        fk_idx: cur_schema.index_of(&join.fk)?,
                        pk_idx: dim_scan_schema.index_of(&join.pk)?,
                        aux_idx: join
                            .aux
                            .iter()
                            .map(|a| dim_scan_schema.index_of(a))
                            .collect::<Result<_>>()?,
                        dim_pred: join.predicate.compile(&dim_scan_schema)?,
                        fact_preds,
                        left_schema: cur_schema.clone(),
                    };
                    let union = TaggedUnionInputFormat::new(Arc::clone(&cur_input), dim_input);
                    let mut spec = JobSpec::new(
                        stage_name,
                        Arc::new(union),
                        Arc::new(RowMapRunner::new(mapper)),
                    );
                    spec.reducer = Some(Arc::new(RepartitionReducer));
                    spec.num_reducers = cluster.total_reduce_slots().max(1) as usize;
                    spec.output = OutputSpec::DfsDir(out_dir.clone());
                    spec.reuse_jvm = false;
                    (spec, ClientArtifacts::default())
                }
            };
            spec.code_token = format!(
                "hive:{}:{}:join{}:{}:v1",
                query.id,
                self.strategy.label(),
                i,
                join.dimension
            );
            spec.lineage = lineage;
            let result = self.engine.run_job_with(&spec, client)?;
            lineage = result.fingerprint;
            // On a cache hit the run-scoped out_dir was never written; the
            // next stage reads the persisted files straight from the cache.
            let next_dir = if result.served_from_cache {
                dir_of(&result.output_files).unwrap_or(out_dir)
            } else {
                out_dir
            };
            stages.push(StageReport {
                name: spec.name.clone(),
                profile: result.profile,
                cost: result.cost,
            });
            cur_schema = joined_schema(&cur_schema, join)?;
            cur_input = Arc::new(RowBinInputFormat::new(next_dir));
        }

        // --- Group-by stage. ---
        let group_idx: Vec<usize> = query
            .group_by
            .iter()
            .map(|g| cur_schema.index_of(g))
            .collect::<Result<_>>()?;
        let gb_dir = format!("{tmp}/groupby");
        let gb_mapper = GroupByMapper {
            group_idx,
            aggregate: query.aggregate.clone(),
            joined_schema: cur_schema.clone(),
        };
        let mut gb = JobSpec::new(
            format!("hive-{}-groupby", query.id),
            Arc::clone(&cur_input),
            Arc::new(RowMapRunner::new(gb_mapper)),
        );
        gb.combiner = Some(Arc::new(FoldValues {
            include_key: false,
            aggregate: query.aggregate.clone(),
        }));
        gb.reducer = Some(Arc::new(FoldValues {
            include_key: true,
            aggregate: query.aggregate.clone(),
        }));
        gb.num_reducers = cluster.total_reduce_slots().max(1) as usize;
        gb.output = OutputSpec::DfsDir(gb_dir.clone());
        gb.reuse_jvm = false;
        gb.code_token = format!("hive:{}:{}:groupby:v1", query.id, self.strategy.label());
        gb.lineage = lineage;
        let result = self.engine.run_job(&gb)?;
        lineage = result.fingerprint;
        let ob_input_dir = if result.served_from_cache {
            dir_of(&result.output_files).unwrap_or(gb_dir)
        } else {
            gb_dir
        };
        stages.push(StageReport {
            name: gb.name.clone(),
            profile: result.profile,
            cost: result.cost,
        });

        // --- Order-by stage (single reducer → total order). ---
        let ob_mapper = OrderByMapper::for_query(query)?;
        let mut ob = JobSpec::new(
            format!("hive-{}-orderby", query.id),
            Arc::new(RowBinInputFormat::new(ob_input_dir)),
            Arc::new(RowMapRunner::new(ob_mapper)),
        );
        ob.reducer = Some(Arc::new(EmitValues));
        ob.num_reducers = 1;
        ob.output = OutputSpec::Memory;
        ob.reuse_jvm = false;
        ob.code_token = format!("hive:{}:{}:orderby:v1", query.id, self.strategy.label());
        ob.lineage = lineage;
        let result = self.engine.run_job(&ob)?;
        let mut rows = result.rows;
        // LIMIT is applied after the total-order stage (Hive's "LIMIT n"
        // also collapses onto the single order-by reducer).
        if let Some(l) = query.limit {
            rows.truncate(l);
        }
        stages.push(StageReport {
            name: ob.name.clone(),
            profile: result.profile,
            cost: result.cost,
        });

        // --- Clean up intermediates (Hive deletes scratch dirs too). ---
        for path in self.engine.dfs().list(&format!("{tmp}/")) {
            self.engine.dfs().delete(&path)?;
        }

        Ok(HiveResult { rows, stages })
    }
}

/// The number of stages a query's plan will have: joins + group-by +
/// order-by (used by tests and the cost narrative).
pub fn expected_stages(query: &StarQuery) -> usize {
    query.joins.len() + 2
}

/// The common directory of a stage's output files (all cached files of one
/// entry live under one `/cache/{fingerprint}/` directory).
fn dir_of(files: &[String]) -> Option<String> {
    files
        .first()
        .and_then(|f| f.rsplit_once('/'))
        .map(|(dir, _)| dir.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_dfs::{ClusterSpec, ColocatingPlacement, DfsOptions};
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::{all_queries, loader, query_by_id, reference_answer};

    fn setup(sf: f64, nodes: usize) -> (Arc<Dfs>, SsbLayout, SsbGen) {
        let dfs = Dfs::new(
            ClusterSpec::tiny(nodes),
            DfsOptions {
                block_size: 1 << 20,
                replication: 2,
                policy: Box::new(ColocatingPlacement),
            },
        );
        let layout = SsbLayout::default();
        let gen = SsbGen::new(sf, 46);
        loader::load(
            &dfs,
            gen,
            &layout,
            &loader::LoadOpts {
                rows_per_group: 2_000,
                cif: false,
                rcfile: true,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap();
        (dfs, layout, gen)
    }

    #[test]
    fn mapjoin_q21_matches_reference_with_expected_stages() {
        let (dfs, layout, gen) = setup(0.005, 3);
        let hive = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::MapJoin);
        let q = query_by_id("Q2.1").unwrap();
        let result = hive.query(&q).unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(result.rows, expect);
        // Paper: "Hive generates a five stage mapjoin plan" for Q2.1.
        assert_eq!(result.stages.len(), 5);
        assert_eq!(expected_stages(&q), 5);
        // Every map task of a join stage reloaded the hash table.
        let stage1 = &result.stages[0];
        let loads = stage1
            .profile
            .map_tasks
            .iter()
            .filter(|t| t.cost.state_load_bytes > 0)
            .count();
        assert_eq!(loads, stage1.profile.map_tasks.len());
        assert!(stage1.profile.client_publish_bytes > 0);
        assert!(result.total_s() > 0.0);
    }

    #[test]
    fn repartition_q21_matches_reference_and_shuffles_more() {
        let (dfs, layout, gen) = setup(0.005, 3);
        let hive = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::Repartition);
        let q = query_by_id("Q2.1").unwrap();
        let result = hive.query(&q).unwrap();
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(result.rows, expect);
        assert_eq!(result.stages.len(), 5);
        // The repartition join shuffles the fact side; mapjoin stages are
        // map-only (zero join-stage shuffle).
        let mapjoin = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::MapJoin);
        let mj = mapjoin.query(&q).unwrap();
        let rp_shuffle: u64 = result.stages[..3]
            .iter()
            .map(|s| s.profile.shuffle_bytes)
            .sum();
        let mj_shuffle: u64 = mj.stages[..3].iter().map(|s| s.profile.shuffle_bytes).sum();
        assert!(rp_shuffle > 0);
        assert_eq!(mj_shuffle, 0);
    }

    #[test]
    fn both_strategies_match_reference_on_all_queries() {
        let (dfs, layout, gen) = setup(0.004, 2);
        let data = gen.gen_all();
        for strategy in [JoinStrategy::MapJoin, JoinStrategy::Repartition] {
            let hive = Hive::new(Arc::clone(&dfs), layout.clone(), strategy);
            for q in all_queries() {
                let result = hive.query(&q).unwrap();
                let expect = reference_answer(&data, &q).unwrap();
                assert_eq!(
                    result.rows,
                    expect,
                    "{} mismatch under {}",
                    q.id,
                    strategy.label()
                );
                assert_eq!(result.stages.len(), expected_stages(&q));
            }
        }
    }

    #[test]
    fn intermediates_are_cleaned_up() {
        let (dfs, layout, _) = setup(0.003, 2);
        let hive = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin);
        let q = query_by_id("Q1.1").unwrap();
        hive.query(&q).unwrap();
        assert!(dfs.list(&format!("{}/tmp/", layout.root)).is_empty());
    }

    #[test]
    fn warm_replay_serves_every_stage_from_cache() {
        let (dfs, layout, gen) = setup(0.003, 2);
        dfs.cache_configure(64 << 20);
        let expect = reference_answer(&gen.gen_all(), &query_by_id("Q2.1").unwrap()).unwrap();
        for strategy in [JoinStrategy::MapJoin, JoinStrategy::Repartition] {
            let hive = Hive::new(Arc::clone(&dfs), layout.clone(), strategy);
            let q = query_by_id("Q2.1").unwrap();
            let cold = hive.query(&q).unwrap();
            let before = dfs.cache_stats();
            let warm = hive.query(&q).unwrap();
            assert_eq!(warm.rows, cold.rows, "{}", strategy.label());
            assert_eq!(warm.rows, expect);
            // Every stage of the chain hit, including the tmp-dir stages
            // whose physical inputs never repeat (lineage fingerprints).
            let hits = dfs.cache_stats().hits - before.hits;
            assert_eq!(hits as usize, expected_stages(&q), "{}", strategy.label());
            assert!(warm.total_s() < cold.total_s(), "{}", strategy.label());
            // A fully-warm run writes no intermediates at all.
            assert!(dfs.list(&format!("{}/tmp/", layout.root)).is_empty());
        }
    }

    #[test]
    fn repeated_queries_do_not_collide() {
        let (dfs, layout, gen) = setup(0.003, 2);
        let hive = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::MapJoin);
        let q = query_by_id("Q1.2").unwrap();
        let a = hive.query(&q).unwrap();
        let b = hive.query(&q).unwrap();
        assert_eq!(a.rows, b.rows);
        let expect = reference_answer(&gen.gen_all(), &q).unwrap();
        assert_eq!(a.rows, expect);
    }
}
