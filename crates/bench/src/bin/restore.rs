//! Cold-then-warm replay of the mixed-tenant workload against the result
//! cache, reporting warm speedup and hit rates.
//!
//! Usage: `restore [SF] [--seed <n>] [--json PATH] [--report PATH] [--gate PATH]`
//! (default SF 0.005, seed 46 — the workload bench's scale).
//!
//! * `--json PATH` writes the committed-gate JSON document (see
//!   `BENCH_restore.json` at the repo root for a committed run).
//! * `--report PATH` writes the human-readable report (uploaded as the CI
//!   `restore-gate` artifact).
//! * `--gate PATH` reads a committed run and **fails (exit 1)** unless the
//!   warm speedup clears both the hard 2x floor and 0.9x its committed
//!   value, and the warm hit rate clears its 0.80 floor.
//!
//! Query execution is real; the two-pass timeline is deterministic
//! simulated time, so the reported numbers are byte-stable across reruns
//! and machines. The bench itself verifies that every warm (cached) result
//! is byte-identical to the cold (recomputed) one before reporting.

use clyde_bench::restore;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: restore [SF] [--seed <n>] [--json PATH] [--report PATH] [--gate PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut sf = 0.005;
    let mut seed = 46u64;
    let mut json_path = None;
    let mut report_path = None;
    let mut gate_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage("--seed needs an integer"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage("--json needs a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => usage("--report needs a path"),
            },
            "--gate" => match args.next() {
                Some(p) => gate_path = Some(p),
                None => usage("--gate needs a path"),
            },
            "--help" | "-h" => usage(""),
            other => match other.parse::<f64>() {
                Ok(v) if v > 0.0 => sf = v,
                _ => usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }

    eprintln!("loading SSB at SF {sf} (seed {seed}) on the workload cluster...");
    let report = restore::run(sf, seed, None, None)
        .unwrap_or_else(|e| panic!("restore cold/warm replay failed: {e}"));
    let rendered = restore::render_report(&report);
    print!("{rendered}");
    if let Some(path) = report_path {
        std::fs::write(&path, &rendered).expect("write report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = json_path {
        std::fs::write(&path, restore::to_json(&report)).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = gate_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate file {path}: {e}"));
        match restore::gate(&report, &committed) {
            Ok(()) => eprintln!("restore gate passed"),
            Err(violations) => {
                for v in &violations {
                    eprintln!("gate FAIL: {v}");
                }
                eprintln!("restore gate FAILED");
                std::process::exit(1);
            }
        }
    }
}
