//! A domain scenario: a retail analyst's quarterly sales review.
//!
//! Shows that the public API is not limited to the 13 canned SSB queries —
//! custom star queries are ordinary [`StarQuery`] values. The "analyst"
//! asks three questions of the same warehouse: revenue by region and year,
//! profitability of air-shipped orders, and the seasonal revenue curve.
//!
//! ```text
//! cargo run --example sales_report --release
//! ```

use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::queries::{Aggregate, DimJoin, DimPred, FactPred, OrderTerm, StarQuery};
use clydesdale::Clydesdale;

fn date_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: "date".into(),
        pk: "d_datekey".into(),
        fk: "lo_orderdate".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn customer_join(predicate: DimPred, aux: &[&str]) -> DimJoin {
    DimJoin {
        dimension: "customer".into(),
        pk: "c_custkey".into(),
        fk: "lo_custkey".into(),
        predicate,
        aux: aux.iter().map(|s| s.to_string()).collect(),
    }
}

fn main() {
    let dfs = Dfs::new(
        ClusterSpec::tiny(4),
        DfsOptions {
            block_size: 4 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    let opts = loader::LoadOpts {
        rows_per_group: 5_000,
        ..Default::default()
    };
    loader::load(&dfs, SsbGen::new(0.01, 46), &layout, &opts).expect("load");
    let clyde = Clydesdale::new(dfs, layout);
    clyde.warm_dimension_cache().expect("warm");

    // --- Question 1: revenue by customer region per year. ---
    let by_region = StarQuery {
        id: "revenue-by-region".into(),
        joins: vec![
            customer_join(DimPred::True, &["c_region"]),
            date_join(DimPred::True, &["d_year"]),
        ],
        fact_preds: vec![],
        group_by: vec!["d_year".into(), "c_region".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: vec![
            (OrderTerm::Column("d_year".into()), false),
            (OrderTerm::Aggregate, true),
        ],
        limit: None,
    };
    let r = clyde.query(&by_region).expect("query 1");
    println!("== revenue by (year, customer region), top region first ==");
    for row in r.rows.iter().take(12) {
        println!("  {:>4}  {:<12} {:>14}", row.at(0), row.at(1), row.at(2));
    }

    // --- Question 2: profit on large air-shipped orders in 1997. ---
    let air_1997 = StarQuery {
        id: "air-profit-1997".into(),
        joins: vec![date_join(
            DimPred::I32Eq {
                column: "d_year".into(),
                value: 1997,
            },
            &["d_yearmonthnum"],
        )],
        fact_preds: vec![FactPred::I32Between {
            column: "lo_quantity".into(),
            lo: 30,
            hi: 50,
        }],
        group_by: vec!["d_yearmonthnum".into()],
        aggregate: Aggregate::SumDiff("lo_revenue".into(), "lo_supplycost".into()),
        order_by: vec![(OrderTerm::Column("d_yearmonthnum".into()), false)],
        limit: None,
    };
    let r = clyde.query(&air_1997).expect("query 2");
    println!("\n== monthly profit on bulk orders through 1997 ==");
    for row in &r.rows {
        println!("  {:>6}  {:>14}", row.at(0), row.at(1));
    }

    // --- Question 3: which selling season earns the most? ---
    let seasonal = StarQuery {
        id: "seasonal-revenue".into(),
        joins: vec![date_join(DimPred::True, &["d_sellingseason"])],
        fact_preds: vec![],
        group_by: vec!["d_sellingseason".into()],
        aggregate: Aggregate::SumColumn("lo_revenue".into()),
        order_by: vec![(OrderTerm::Aggregate, true)],
        limit: None,
    };
    let r = clyde.query(&seasonal).expect("query 3");
    println!("\n== revenue by selling season ==");
    for row in &r.rows {
        println!("  {:<10} {:>14}", row.at(0), row.at(1));
    }
    println!(
        "\n(3 ad-hoc star queries executed as MapReduce jobs; scan locality {:.0}%)",
        r.locality * 100.0
    );
}
