//! EXPLAIN ANALYZE: per-query profiles comparing model-predicted cost with
//! measured execution.
//!
//! A [`QueryProfile`] is assembled from the [`JobHistory`] records a query
//! produced (each task lane carries the `CostParams`-priced phase slices,
//! the measured wall-clock per phase rides on `wall_phases`) plus the
//! per-node I/O snapshot the engine attributed to the job. Two views come
//! out of it:
//!
//! * `render()` — the human-facing explain-analyze tree: stage and phase
//!   rows with simulated seconds, measured wall time, and drift percentages,
//!   ending in a calibration verdict that flags any phase whose measured
//!   share diverges more than a threshold from the model's share.
//! * `to_json()` — a deterministic artifact (simulated time and counters
//!   only, wall excluded) consumed by `clyde-profdiff` for regression
//!   attribution. Byte-identical across runs and host thread counts.
//!
//! Calibration compares *shares*, not absolute values: simulated seconds
//! price a paper-era cluster while wall nanoseconds measure this host, so
//! the honest question is whether the model distributes time across phases
//! the way the instrumented run does. Only phases with a wall measurement
//! participate, and both sides are renormalized over that subset.

use super::history::{IoBytes, JobHistory, Phase, TaskKind};
use super::json::escape;

/// Default calibration threshold: flag phases whose measured share drifts
/// more than this many percent (relative) from the model's share.
pub const DEFAULT_DRIFT_THRESHOLD_PCT: f64 = 25.0;

/// One stage band of a job (setup / map / shuffle / reduce / overhead).
#[derive(Debug, Clone)]
pub struct StageRow {
    pub name: &'static str,
    /// Model-priced simulated seconds.
    pub sim_s: f64,
    /// Measured wall nanoseconds of the tasks in this stage (0 for stages
    /// with no in-process tasks: setup, shuffle, overhead).
    pub wall_ns: u64,
}

/// One phase of a job, model vs measured.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    pub phase: Phase,
    /// Predicted seconds, summed over all tasks.
    pub model_s: f64,
    /// Longest single-task total (the phase's critical-path contribution).
    pub model_crit_s: f64,
    /// Measured wall nanoseconds summed over tasks (0 = not instrumented).
    pub wall_ns: u64,
    /// Model share among phases that also have wall measurements.
    pub model_share: f64,
    /// Measured share among the same subset.
    pub wall_share: f64,
    /// Relative drift of the measured share from the model share, percent.
    /// `None` when this phase has no wall measurement to compare.
    pub drift_pct: Option<f64>,
    /// Whether `|drift_pct|` exceeded the profile's threshold.
    pub flagged: bool,
}

/// Model-vs-measured report for one job of a query.
#[derive(Debug, Clone)]
pub struct JobProfileReport {
    pub name: String,
    pub sim_total_s: f64,
    pub wall_total_ns: u64,
    pub map_tasks: usize,
    pub reduce_tasks: usize,
    pub shuffle_bytes: u64,
    pub stages: Vec<StageRow>,
    pub phases: Vec<PhaseRow>,
    /// Per-phase critical-path seconds over map lanes (phase label order of
    /// [`Phase::all`]); feeds profdiff's sub-attribution of the map stage.
    pub map_phase_crit: Vec<(Phase, f64)>,
    /// Same over reduce lanes.
    pub reduce_phase_crit: Vec<(Phase, f64)>,
}

/// The explain-analyze profile of one query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    pub query: String,
    /// Simulated end-to-end seconds including the client-side final sort.
    pub total_s: f64,
    pub final_sort_s: f64,
    pub drift_threshold_pct: f64,
    pub jobs: Vec<JobProfileReport>,
    /// Per-node DFS I/O attributed to the query (merged over its jobs).
    pub io: Vec<IoBytes>,
    pub corrupt_reads: u64,
}

fn stage_rows(h: &JobHistory) -> Vec<StageRow> {
    let wall = |kind: TaskKind| -> u64 {
        h.tasks
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.wall_ns)
            .sum()
    };
    vec![
        StageRow {
            name: "setup",
            sim_s: h.setup_s,
            wall_ns: 0,
        },
        StageRow {
            name: "map",
            sim_s: h.map_s,
            wall_ns: wall(TaskKind::Map),
        },
        StageRow {
            name: "shuffle",
            sim_s: h.shuffle_s,
            wall_ns: 0,
        },
        StageRow {
            name: "reduce",
            sim_s: h.reduce_s,
            wall_ns: wall(TaskKind::Reduce),
        },
        StageRow {
            name: "overhead",
            sim_s: h.overhead_s,
            wall_ns: 0,
        },
    ]
}

fn phase_rows(h: &JobHistory, threshold_pct: f64) -> Vec<PhaseRow> {
    let wall_of = |p: Phase| -> u64 {
        h.wall_phases
            .iter()
            .filter(|(wp, _)| *wp == p)
            .map(|(_, ns)| *ns)
            .sum()
    };
    let mut rows: Vec<PhaseRow> = Phase::all()
        .iter()
        .filter_map(|&p| {
            let model_s = h.phase_total_s(p);
            let wall_ns = wall_of(p);
            if model_s <= 0.0 && wall_ns == 0 {
                return None;
            }
            Some(PhaseRow {
                phase: p,
                model_s,
                model_crit_s: h.phase_max_s(p),
                wall_ns,
                model_share: 0.0,
                wall_share: 0.0,
                drift_pct: None,
                flagged: false,
            })
        })
        .collect();

    // Calibrate over the subset of phases that were wall-instrumented.
    let model_base: f64 = rows
        .iter()
        .filter(|r| r.wall_ns > 0)
        .map(|r| r.model_s)
        .sum();
    let wall_base: u64 = rows.iter().map(|r| r.wall_ns).sum();
    if model_base > 0.0 && wall_base > 0 {
        for r in rows.iter_mut().filter(|r| r.wall_ns > 0) {
            r.model_share = r.model_s / model_base;
            r.wall_share = r.wall_ns as f64 / wall_base as f64;
            if r.model_share > 0.0 {
                let drift = (r.wall_share - r.model_share) / r.model_share * 100.0;
                r.drift_pct = Some(drift);
                r.flagged = drift.abs() > threshold_pct;
            }
        }
    }
    rows
}

fn phase_crit_for(h: &JobHistory, kind: TaskKind) -> Vec<(Phase, f64)> {
    Phase::all()
        .iter()
        .filter_map(|&p| {
            let s = h.phase_max_s_for(kind, p);
            if s > 0.0 {
                Some((p, s))
            } else {
                None
            }
        })
        .collect()
}

fn merge_io(profiles: &[JobHistory]) -> (Vec<IoBytes>, u64) {
    let mut per_node: Vec<IoBytes> = Vec::new();
    let mut corrupt = 0;
    for h in profiles {
        corrupt += h.corrupt_reads;
        for io in &h.io {
            match per_node.iter_mut().find(|n| n.node == io.node) {
                Some(n) => {
                    n.local_read += io.local_read;
                    n.remote_read += io.remote_read;
                    n.written += io.written;
                }
                None => per_node.push(*io),
            }
        }
    }
    per_node.sort_by_key(|n| n.node);
    (per_node, corrupt)
}

impl QueryProfile {
    /// Assemble the profile of one query from the job histories it recorded
    /// (in execution order) plus the priced client-side sort.
    pub fn from_histories(
        query: &str,
        histories: &[JobHistory],
        final_sort_s: f64,
        drift_threshold_pct: f64,
    ) -> QueryProfile {
        let jobs: Vec<JobProfileReport> = histories
            .iter()
            .map(|h| JobProfileReport {
                name: h.name.clone(),
                sim_total_s: h.total_s(),
                wall_total_ns: h.total_wall_ns(),
                map_tasks: h.lanes(TaskKind::Map).len(),
                reduce_tasks: h.lanes(TaskKind::Reduce).len(),
                shuffle_bytes: h.shuffle_bytes,
                stages: stage_rows(h),
                phases: phase_rows(h, drift_threshold_pct),
                map_phase_crit: phase_crit_for(h, TaskKind::Map),
                reduce_phase_crit: phase_crit_for(h, TaskKind::Reduce),
            })
            .collect();
        let (io, corrupt_reads) = merge_io(histories);
        let total_s = jobs.iter().map(|j| j.sim_total_s).sum::<f64>() + final_sort_s;
        QueryProfile {
            query: query.to_string(),
            total_s,
            final_sort_s,
            drift_threshold_pct,
            jobs,
            io,
            corrupt_reads,
        }
    }

    /// Phases whose measured share drifted past the threshold, as
    /// (job name, phase, drift pct), in report order.
    pub fn flagged_phases(&self) -> Vec<(&str, Phase, f64)> {
        self.jobs
            .iter()
            .flat_map(|j| {
                j.phases
                    .iter()
                    .filter(|p| p.flagged)
                    .map(|p| (j.name.as_str(), p.phase, p.drift_pct.unwrap_or(0.0)))
            })
            .collect()
    }

    /// The human-facing explain-analyze report. Wall-clock columns are
    /// host-dependent; the deterministic artifact is [`Self::to_json`].
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "== explain analyze {} ==", self.query).expect("string write");
        writeln!(
            out,
            "total {:.1}s simulated (jobs {:.1}s + final sort {:.1}s)",
            self.total_s,
            self.total_s - self.final_sort_s,
            self.final_sort_s
        )
        .expect("string write");
        for j in &self.jobs {
            writeln!(
                out,
                "job {}: {:.1}s sim, {:.2}ms wall across tasks ({} map + {} reduce)",
                j.name,
                j.sim_total_s,
                j.wall_total_ns as f64 / 1e6,
                j.map_tasks,
                j.reduce_tasks
            )
            .expect("string write");
            for s in &j.stages {
                if s.sim_s <= 0.0 && s.wall_ns == 0 {
                    continue;
                }
                let wall = if s.wall_ns > 0 {
                    format!("  {:.2}ms wall", s.wall_ns as f64 / 1e6)
                } else {
                    String::new()
                };
                writeln!(out, "  stage {:<9} {:>8.1}s sim{}", s.name, s.sim_s, wall)
                    .expect("string write");
            }
            writeln!(
                out,
                "  {:<11} {:>9} {:>9} {:>7} {:>11} {:>7} {:>8}",
                "phase", "model", "crit", "share", "wall", "share", "drift"
            )
            .expect("string write");
            for p in &j.phases {
                let (wall, wshare, drift) = match p.drift_pct {
                    Some(d) => (
                        format!("{:.2}ms", p.wall_ns as f64 / 1e6),
                        format!("{:.1}%", p.wall_share * 100.0),
                        format!("{:+.1}%{}", d, if p.flagged { "  <-- drift" } else { "" }),
                    ),
                    None => ("-".to_string(), "-".to_string(), "-".to_string()),
                };
                let mshare = if p.drift_pct.is_some() {
                    format!("{:.1}%", p.model_share * 100.0)
                } else {
                    "-".to_string()
                };
                writeln!(
                    out,
                    "  {:<11} {:>8.2}s {:>8.2}s {:>7} {:>11} {:>7} {:>8}",
                    p.phase.label(),
                    p.model_s,
                    p.model_crit_s,
                    mshare,
                    wall,
                    wshare,
                    drift
                )
                .expect("string write");
            }
        }
        if !self.io.is_empty() {
            let local: u64 = self.io.iter().map(|n| n.local_read).sum();
            let remote: u64 = self.io.iter().map(|n| n.remote_read).sum();
            let written: u64 = self.io.iter().map(|n| n.written).sum();
            writeln!(
                out,
                "io: {} nodes, {} B local + {} B remote read, {} B written{}",
                self.io.len(),
                local,
                remote,
                written,
                if self.corrupt_reads > 0 {
                    format!(", {} corrupt reads", self.corrupt_reads)
                } else {
                    String::new()
                }
            )
            .expect("string write");
        }
        let flagged = self.flagged_phases();
        if flagged.is_empty() {
            writeln!(
                out,
                "calibration: all phases within {:.0}% of CostParams pricing",
                self.drift_threshold_pct
            )
            .expect("string write");
        } else {
            let list: Vec<String> = flagged
                .iter()
                .map(|(_, p, d)| format!("{} {:+.1}%", p.label(), d))
                .collect();
            writeln!(
                out,
                "calibration: {} phase(s) drift >{:.0}% from CostParams pricing: {}",
                flagged.len(),
                self.drift_threshold_pct,
                list.join(", ")
            )
            .expect("string write");
        }
        out
    }

    /// Deterministic JSON artifact: simulated time and counters only (wall
    /// measurements are host-dependent and deliberately excluded), so two
    /// identical runs — at any host thread count — serialize byte-identically.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "{{\"query\":\"{}\",\"total_s\":{:.6},\"final_sort_s\":{:.6},\"jobs\":[",
            escape(&self.query),
            self.total_s,
            self.final_sort_s
        )
        .expect("string write");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{}\",\"total_s\":{:.6},\"map_tasks\":{},\"reduce_tasks\":{},\"shuffle_bytes\":{},\"stages\":{{",
                escape(&j.name),
                j.sim_total_s,
                j.map_tasks,
                j.reduce_tasks,
                j.shuffle_bytes
            )
            .expect("string write");
            for (k, s) in j.stages.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":{:.6}", s.name, s.sim_s).expect("string write");
            }
            out.push_str("},\"map_phases\":{");
            for (k, (p, s)) in j.map_phase_crit.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":{:.6}", p.label(), s).expect("string write");
            }
            out.push_str("},\"reduce_phases\":{");
            for (k, (p, s)) in j.reduce_phase_crit.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":{:.6}", p.label(), s).expect("string write");
            }
            out.push_str("},\"phases\":{");
            for (k, p) in j.phases.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(
                    out,
                    "\"{}\":{{\"model_s\":{:.6},\"crit_s\":{:.6}}}",
                    p.phase.label(),
                    p.model_s,
                    p.model_crit_s
                )
                .expect("string write");
            }
            out.push_str("}}");
        }
        out.push_str("],\"io\":{");
        let local: u64 = self.io.iter().map(|n| n.local_read).sum();
        let remote: u64 = self.io.iter().map(|n| n.remote_read).sum();
        let written: u64 = self.io.iter().map(|n| n.written).sum();
        write!(
            out,
            "\"local_read\":{local},\"remote_read\":{remote},\"written\":{written},\"corrupt_reads\":{},\"per_node\":[",
            self.corrupt_reads
        )
        .expect("string write");
        for (i, n) in self.io.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"node\":{},\"local_read\":{},\"remote_read\":{},\"written\":{}}}",
                n.node, n.local_read, n.remote_read, n.written
            )
            .expect("string write");
        }
        out.push_str("]}}");
        out
    }
}

/// Bundle a set of query profiles into one deterministic artifact — the
/// input format of `clyde-profdiff`.
pub fn profiles_json(profiles: &[QueryProfile]) -> String {
    let mut out = String::from("{\"format\":\"clyde-profiles\",\"version\":1,\"queries\":[\n");
    for (i, p) in profiles.iter().enumerate() {
        out.push_str(&p.to_json());
        if i + 1 < profiles.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::history::{PhaseSlice, TaskLane};

    fn lane(kind: TaskKind, node: usize, dur: f64, phases: Vec<(Phase, f64)>) -> TaskLane {
        let mut t = 0.0;
        let slices = phases
            .into_iter()
            .map(|(p, d)| {
                let s = PhaseSlice {
                    phase: p,
                    start_s: t,
                    dur_s: d,
                    note: None,
                };
                t += d;
                s
            })
            .collect();
        TaskLane {
            index: node,
            kind,
            node,
            slot: 0,
            start_s: 0.0,
            dur_s: dur,
            local_bytes: 1000,
            remote_bytes: 0,
            emit_records: 10,
            emit_bytes: 100,
            wall_ns: 0,
            speculative: false,
            phases: slices,
        }
    }

    fn history() -> JobHistory {
        JobHistory {
            name: "q".into(),
            setup_s: 1.0,
            map_s: 10.0,
            shuffle_s: 2.0,
            reduce_s: 3.0,
            overhead_s: 1.0,
            map_concurrency: 1,
            locality: 1.0,
            split_locality: 1.0,
            // Model: build 4s vs probe 6s (40% / 60% of the measured set).
            wall_phases: vec![(Phase::HashBuild, 8_000_000), (Phase::Probe, 2_000_000)],
            io: vec![IoBytes {
                node: 0,
                local_read: 4096,
                remote_read: 512,
                written: 64,
            }],
            corrupt_reads: 0,
            tasks: vec![
                lane(
                    TaskKind::Map,
                    0,
                    10.0,
                    vec![(Phase::HashBuild, 4.0), (Phase::Probe, 6.0)],
                ),
                lane(TaskKind::Reduce, 1, 3.0, vec![(Phase::Reduce, 3.0)]),
            ],
            ..JobHistory::default()
        }
    }

    #[test]
    fn calibration_flags_drifting_phases() {
        // Wall says hash-build took 80% of the measured time; the model
        // prices it at 40% — a +100% drift, far past the 25% threshold.
        let p = QueryProfile::from_histories("Q2.1", &[history()], 0.5, 25.0);
        assert_eq!(p.jobs.len(), 1);
        let flagged = p.flagged_phases();
        assert!(
            flagged
                .iter()
                .any(|(_, ph, d)| *ph == Phase::HashBuild && *d > 25.0),
            "hash-build must be flagged: {flagged:?}"
        );
        let build = p.jobs[0]
            .phases
            .iter()
            .find(|r| r.phase == Phase::HashBuild)
            .unwrap();
        assert!((build.model_share - 0.4).abs() < 1e-9);
        assert!((build.wall_share - 0.8).abs() < 1e-9);
        assert!((build.drift_pct.unwrap() - 100.0).abs() < 1e-6);
        // The un-instrumented reduce phase has no drift verdict.
        let reduce = p.jobs[0]
            .phases
            .iter()
            .find(|r| r.phase == Phase::Reduce)
            .unwrap();
        assert!(reduce.drift_pct.is_none());
        let text = p.render();
        assert!(text.contains("explain analyze Q2.1"));
        assert!(text.contains("<-- drift"));
        assert!(text.contains("calibration:"));
        assert!(text.contains("io: 1 nodes"));
    }

    #[test]
    fn totals_include_jobs_and_final_sort() {
        let p = QueryProfile::from_histories("Q1.1", &[history()], 0.5, 25.0);
        assert!((p.total_s - (17.0 + 0.5)).abs() < 1e-9);
        assert_eq!(p.jobs[0].map_tasks, 1);
        assert_eq!(p.jobs[0].reduce_tasks, 1);
        // Map-side critical path carries build and probe; reduce side the
        // reduce phase.
        assert!(p.jobs[0]
            .map_phase_crit
            .iter()
            .any(|(ph, s)| *ph == Phase::Probe && (*s - 6.0).abs() < 1e-9));
        assert!(p.jobs[0]
            .reduce_phase_crit
            .iter()
            .any(|(ph, s)| *ph == Phase::Reduce && (*s - 3.0).abs() < 1e-9));
    }

    #[test]
    fn json_artifact_is_deterministic_and_wall_free() {
        let mk = || {
            let mut h = history();
            // Wall data varies run to run; the artifact must not see it.
            h.wall_phases = vec![(Phase::HashBuild, 123), (Phase::Probe, 456)];
            for t in &mut h.tasks {
                t.wall_ns = 999;
            }
            QueryProfile::from_histories("Q3.4", &[h], 0.5, 25.0)
        };
        let a = mk().to_json();
        let mut h2 = history();
        h2.wall_phases = vec![(Phase::HashBuild, 77_000), (Phase::Probe, 1)];
        let b = QueryProfile::from_histories("Q3.4", &[h2], 0.5, 25.0).to_json();
        assert_eq!(a, b, "wall-clock must not leak into the artifact");
        assert!(a.contains("\"query\":\"Q3.4\""));
        assert!(a.contains("\"map_phases\""));
        assert!(!a.contains("wall"));
        // Valid JSON per our own parser.
        let doc = crate::obs::json::parse(&a).expect("artifact parses");
        assert_eq!(doc.get("query").and_then(|q| q.as_str()), Some("Q3.4"));

        let bundle = profiles_json(&[mk(), mk()]);
        let doc = crate::obs::json::parse(&bundle).expect("bundle parses");
        assert_eq!(
            doc.get("format").and_then(|f| f.as_str()),
            Some("clyde-profiles")
        );
        assert_eq!(doc.get("queries").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn io_merges_across_jobs() {
        let mut h1 = history();
        let mut h2 = history();
        h2.io = vec![
            IoBytes {
                node: 0,
                local_read: 4,
                remote_read: 0,
                written: 0,
            },
            IoBytes {
                node: 2,
                local_read: 8,
                remote_read: 0,
                written: 0,
            },
        ];
        h1.corrupt_reads = 1;
        h2.corrupt_reads = 2;
        let p = QueryProfile::from_histories("Qx", &[h1, h2], 0.0, 25.0);
        assert_eq!(p.corrupt_reads, 3);
        assert_eq!(p.io.len(), 2);
        assert_eq!(p.io[0].node, 0);
        assert_eq!(p.io[0].local_read, 4100);
        assert_eq!(p.io[1].node, 2);
        assert_eq!(p.io[1].local_read, 8);
    }
}
