//! Minimal offline stand-in for `criterion`.
//!
//! Same macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Throughput`, `BenchmarkId`,
//! `b.iter`), but measurement is a simple calibrated wall-clock loop:
//! warm up briefly, pick an iteration count targeting ~0.3 s, run three
//! samples, and report the best per-iteration time (plus throughput when
//! declared). No statistics, plots, or baselines.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark identifier, printed as `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

pub trait IntoBenchName {
    fn into_name(self) -> String;
}

impl IntoBenchName for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

impl IntoBenchName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchName for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the routine.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: time a single iteration, then target ~0.3 s per sample.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
        _marker: std::marker::PhantomData,
    };
    f(&mut probe);
    let once = probe.elapsed.as_secs_f64().max(1e-9);
    let iters = ((0.3 / once) as u64).clamp(1, 1_000_000);

    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        best = best.min(b.elapsed.as_secs_f64() / iters as f64);
    }

    let mut line = format!("{name:<50} {:>12}/iter", format_time(best));
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  {:>14.0} elem/s", n as f64 / best));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                "  {:>11.1} MiB/s",
                n as f64 / best / (1 << 20) as f64
            ));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("sum", "10"), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        g.finish();
    }
}
