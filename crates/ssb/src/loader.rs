//! Bulk loaders: generate SSB data and lay it out on the DFS.
//!
//! Matches the paper's storage setup (Section 6.2):
//!
//! * for Clydesdale, the fact table is stored in **(Multi-)CIF** and a
//!   master copy of each dimension table lives in the DFS (engines then
//!   cache dimensions on node-local disks);
//! * for Hive, *all* tables are stored in **RCFile**;
//! * optionally a text copy, for size comparisons (600 GB text vs 334 GB
//!   binary CIF at SF1000).

use crate::gen::SsbGen;
use crate::schema;
use clyde_columnar::{CifTableMeta, CifWriter, RcFileWriter, TextWriter};
use clyde_common::{rowcodec, ClydeError, Result, Row};
use clyde_dfs::Dfs;
use std::sync::Arc;

/// Path conventions for an SSB dataset on the DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsbLayout {
    pub root: String,
}

impl Default for SsbLayout {
    fn default() -> SsbLayout {
        SsbLayout {
            root: "/ssb".to_string(),
        }
    }
}

impl SsbLayout {
    pub fn new(root: impl Into<String>) -> SsbLayout {
        SsbLayout { root: root.into() }
    }

    /// CIF base directory of the fact table.
    pub fn fact_cif(&self) -> String {
        format!("{}/cif/lineorder", self.root)
    }

    /// RCFile base of a table (writer produces `{base}.rc` + meta).
    pub fn table_rc(&self, table: &str) -> String {
        format!("{}/rc/{table}", self.root)
    }

    /// Row-binary master copy of a dimension table.
    pub fn dim_bin(&self, table: &str) -> String {
        format!("{}/dims/{table}.bin", self.root)
    }

    /// Text copy of a table.
    pub fn table_text(&self, table: &str) -> String {
        format!("{}/text/{table}.tbl", self.root)
    }
}

/// What to materialize.
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// Rows per row group for CIF and RCFile (small in tests so multi-group
    /// code paths execute).
    pub rows_per_group: u64,
    /// Store the fact table in CIF (Clydesdale's layout).
    pub cif: bool,
    /// Store all tables in RCFile (Hive's layout).
    pub rcfile: bool,
    /// Also store the fact table as text.
    pub text: bool,
    /// Stable-sort fact rows by `lo_orderdate` before writing, so each CIF
    /// row group covers a narrow date range and zone maps on the date (and
    /// date-correlated) columns become selective. Never changes query
    /// results — only the physical row order.
    pub cluster_by_date: bool,
}

impl Default for LoadOpts {
    fn default() -> LoadOpts {
        LoadOpts {
            rows_per_group: 100_000,
            cif: true,
            rcfile: true,
            text: false,
            cluster_by_date: true,
        }
    }
}

/// Handle to a loaded dataset.
#[derive(Debug, Clone)]
pub struct SsbDataset {
    pub layout: SsbLayout,
    pub gen: SsbGen,
    pub cif_meta: Option<CifTableMeta>,
    /// Bytes of the fact table per format, for size comparisons.
    pub fact_bytes_cif: u64,
    pub fact_bytes_rc: u64,
    pub fact_bytes_text: u64,
}

/// Generate the dataset and write it to the DFS in the requested formats.
pub fn load(
    dfs: &Arc<Dfs>,
    gen: SsbGen,
    layout: &SsbLayout,
    opts: &LoadOpts,
) -> Result<SsbDataset> {
    if !opts.cif && !opts.rcfile && !opts.text {
        return Err(ClydeError::Config("no storage format selected".into()));
    }

    // --- Dimensions: row-binary master copies + optional RCFile. ---
    let dims: [(&str, Vec<Row>); 4] = [
        (schema::CUSTOMER, gen.gen_customer()),
        (schema::SUPPLIER, gen.gen_supplier()),
        (schema::PART, gen.gen_part()),
        (schema::DATE, gen.gen_date()),
    ];
    for (name, rows) in &dims {
        dfs.write_file(layout.dim_bin(name), None, &rowcodec::write_rows(rows))?;
        if opts.rcfile {
            let dim_schema = schema::schema_of(name).expect("known table");
            let mut w = RcFileWriter::new(
                Arc::clone(dfs),
                layout.table_rc(name),
                dim_schema,
                opts.rows_per_group,
            )?;
            for r in rows {
                w.append(r)?;
            }
            w.close()?;
        }
    }

    // --- Fact table: stream once into every requested writer. ---
    let fact_schema = schema::lineorder_schema();
    let mut cif = if opts.cif {
        Some(CifWriter::new(
            Arc::clone(dfs),
            layout.fact_cif(),
            fact_schema.clone(),
            opts.rows_per_group,
        )?)
    } else {
        None
    };
    let mut rc = if opts.rcfile {
        Some(RcFileWriter::new(
            Arc::clone(dfs),
            layout.table_rc(schema::LINEORDER),
            fact_schema.clone(),
            opts.rows_per_group,
        )?)
    } else {
        None
    };
    let mut text = if opts.text {
        Some(TextWriter::create(
            dfs,
            layout.table_text(schema::LINEORDER),
        )?)
    } else {
        None
    };

    {
        let mut append = |row: &Row| -> Result<()> {
            if let Some(w) = cif.as_mut() {
                w.append(row)?;
            }
            if let Some(w) = rc.as_mut() {
                w.append(row)?;
            }
            if let Some(w) = text.as_mut() {
                w.append(row)?;
            }
            Ok(())
        };
        if opts.cluster_by_date {
            // Buffer, stable-sort on lo_orderdate (column 5), then stream:
            // rows with the same date keep their generation order.
            let mut rows: Vec<Row> = Vec::new();
            gen.for_each_lineorder(|row| {
                rows.push(row.clone());
                Ok(())
            })?;
            rows.sort_by_key(|r| r.at(5).as_i64());
            for row in &rows {
                append(row)?;
            }
        } else {
            gen.for_each_lineorder(&mut append)?;
        }
    }

    let cif_meta = cif.map(CifWriter::close).transpose()?;
    if let Some(w) = rc {
        w.close()?;
    }
    if let Some(w) = text {
        w.close()?;
    }

    // --- Size accounting. ---
    let sum_prefix = |prefix: &str| -> u64 {
        dfs.list(prefix)
            .iter()
            .map(|p| dfs.file_len(p).unwrap_or(0))
            .sum()
    };
    let fact_bytes_cif = if opts.cif {
        sum_prefix(&format!("{}/", layout.fact_cif()))
    } else {
        0
    };
    let fact_bytes_rc = if opts.rcfile {
        dfs.file_len(&format!("{}.rc", layout.table_rc(schema::LINEORDER)))
            .unwrap_or(0)
    } else {
        0
    };
    let fact_bytes_text = if opts.text {
        dfs.file_len(&layout.table_text(schema::LINEORDER))
            .unwrap_or(0)
    } else {
        0
    };

    Ok(SsbDataset {
        layout: layout.clone(),
        gen,
        cif_meta,
        fact_bytes_cif,
        fact_bytes_rc,
        fact_bytes_text,
    })
}

/// Read a dimension table's master copy back from the DFS.
pub fn read_dimension(dfs: &Dfs, layout: &SsbLayout, table: &str) -> Result<Vec<Row>> {
    let data = dfs.read_file(&layout.dim_bin(table), None)?;
    rowcodec::read_rows(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_columnar::{CifReader, RcFileReader};

    #[test]
    fn load_roundtrips_all_formats() {
        let dfs = Dfs::for_tests(4);
        let gen = SsbGen::new(0.001, 5);
        let layout = SsbLayout::default();
        let ds = load(
            &dfs,
            gen,
            &layout,
            &LoadOpts {
                rows_per_group: 500,
                cif: true,
                rcfile: true,
                text: true,
                // Keep the generation order so stored rows compare equal to
                // `gen_all()` output below.
                cluster_by_date: false,
            },
        )
        .unwrap();

        let expected = gen.gen_all();

        // CIF fact table.
        let cif = CifReader::open(&dfs, &layout.fact_cif()).unwrap();
        assert_eq!(cif.meta().total_rows() as usize, expected.lineorder.len());
        let cif_rows = cif.read_all_rows(&dfs).unwrap();
        assert_eq!(cif_rows, expected.lineorder);

        // RCFile fact table.
        let rc = RcFileReader::open(&dfs, &layout.table_rc(schema::LINEORDER)).unwrap();
        assert_eq!(rc.read_all_rows(&dfs).unwrap(), expected.lineorder);

        // Dimension masters.
        let cust = read_dimension(&dfs, &layout, schema::CUSTOMER).unwrap();
        assert_eq!(cust, expected.customer);
        let date = read_dimension(&dfs, &layout, schema::DATE).unwrap();
        assert_eq!(date.len(), 2557);

        // Dimension RCFiles (Hive reads these).
        let rc_cust = RcFileReader::open(&dfs, &layout.table_rc(schema::CUSTOMER)).unwrap();
        assert_eq!(rc_cust.read_all_rows(&dfs).unwrap(), expected.customer);

        // Size relationships: binary columnar is smaller than text (the
        // paper's 334 GB vs 600 GB observation).
        assert!(ds.fact_bytes_cif > 0);
        assert!(ds.fact_bytes_text > ds.fact_bytes_cif);
        assert!(ds.cif_meta.is_some());
    }

    #[test]
    fn date_clustering_sorts_without_losing_rows() {
        let dfs = Dfs::for_tests(2);
        let layout = SsbLayout::new("/clustered");
        let gen = SsbGen::new(0.001, 5);
        load(
            &dfs,
            gen,
            &layout,
            &LoadOpts {
                rows_per_group: 500,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap();
        let rows = CifReader::open(&dfs, &layout.fact_cif())
            .unwrap()
            .read_all_rows(&dfs)
            .unwrap();
        let dates: Vec<i64> = rows.iter().map(|r| r.at(5).as_i64().unwrap()).collect();
        assert!(dates.windows(2).all(|w| w[0] <= w[1]), "dates must ascend");
        // Same rows, stably reordered — nothing dropped or duplicated.
        let mut expected = gen.gen_all().lineorder;
        expected.sort_by_key(|r| r.at(5).as_i64());
        assert_eq!(rows, expected);
    }

    #[test]
    fn selecting_no_format_is_an_error() {
        let dfs = Dfs::for_tests(2);
        let err = load(
            &dfs,
            SsbGen::new(0.001, 1),
            &SsbLayout::default(),
            &LoadOpts {
                rows_per_group: 100,
                cif: false,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn cif_only_load_skips_rcfile() {
        let dfs = Dfs::for_tests(2);
        let layout = SsbLayout::new("/only");
        load(
            &dfs,
            SsbGen::new(0.001, 2),
            &layout,
            &LoadOpts {
                rows_per_group: 1000,
                cif: true,
                rcfile: false,
                text: false,
                cluster_by_date: true,
            },
        )
        .unwrap();
        assert!(CifReader::open(&dfs, &layout.fact_cif()).is_ok());
        assert!(RcFileReader::open(&dfs, &layout.table_rc(schema::LINEORDER)).is_err());
    }
}
