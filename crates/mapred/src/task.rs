//! Task-side context: I/O, per-node persistent state (JVM reuse), memory
//! accounting, and the output collector.

use crate::conf::JobConf;
use crate::cost::TaskCost;
use crate::distcache::DistCache;
use crate::input::{InputFormat, InputSplit};
use bytes::Bytes;
use clyde_common::lockorder::Mutex;
use clyde_common::obs::Phase;
use clyde_common::{keycodec, ClydeError, FxHashMap, Result, Row};
use clyde_dfs::{Dfs, NodeId, NodeLocalStore, ScanStats};
use std::any::Any;
use std::sync::Arc;

/// DFS access bound to the task's node, crediting all reads to the task's
/// [`ScanStats`] so the cost model can price the scan.
#[derive(Clone)]
pub struct TaskIo {
    pub dfs: Arc<Dfs>,
    /// The node performing the reads; `None` for job-client reads (Hive's
    /// master building mapjoin hash tables), which are never local.
    pub node: Option<NodeId>,
    pub stats: Arc<ScanStats>,
}

impl TaskIo {
    pub fn new(dfs: Arc<Dfs>, node: NodeId) -> TaskIo {
        TaskIo {
            dfs,
            node: Some(node),
            stats: Arc::new(ScanStats::new()),
        }
    }

    /// I/O performed by the job client rather than a task.
    pub fn client(dfs: Arc<Dfs>) -> TaskIo {
        TaskIo {
            dfs,
            node: None,
            stats: Arc::new(ScanStats::new()),
        }
    }

    pub fn read_file(&self, path: &str) -> Result<Bytes> {
        self.dfs
            .read_file_tracked(path, self.node, Some(&self.stats))
    }

    pub fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.dfs
            .read_range_tracked(path, offset, len, self.node, Some(&self.stats))
    }
}

/// Per-node state that persists across consecutive tasks of the same job —
/// the analog of static fields in a reused JVM (paper Sections 3 and 5.1).
///
/// Clydesdale stores its dimension hash tables here: the first map task on a
/// node builds them, and every later task (and every thread) reuses the
/// `Arc`. With JVM reuse disabled (the multithreading ablation), the engine
/// hands each task a fresh `NodeState` and the build repeats.
#[derive(Default)]
pub struct NodeState {
    entries: Mutex<FxHashMap<String, Arc<dyn Any + Send + Sync>>>,
}

impl NodeState {
    pub fn new() -> NodeState {
        NodeState::default()
    }

    /// Fetch the value under `key`, building it with `init` on first access.
    /// Returns the value and whether this call built it.
    pub fn get_or_try_init<T, F>(&self, key: &str, init: F) -> Result<(Arc<T>, bool)>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T>,
    {
        let mut entries = self.entries.lock();
        if let Some(existing) = entries.get(key) {
            let typed = Arc::clone(existing).downcast::<T>().map_err(|_| {
                ClydeError::MapReduce(format!("node state type mismatch for {key}"))
            })?;
            return Ok((typed, false));
        }
        // Build while holding the lock: tasks on one node run one at a time,
        // and even under the multi-threaded runner only the runner's control
        // thread builds (Section 4.2: the build phase is single-threaded).
        let value = Arc::new(init()?);
        entries.insert(
            key.to_string(),
            Arc::clone(&value) as Arc<dyn Any + Send + Sync>,
        );
        Ok((value, true))
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.lock().contains_key(key)
    }

    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

/// Per-node memory budget, shared by all tasks the engine runs on that node
/// within one job.
pub struct MemoryTracker {
    capacity: u64,
    used: Mutex<u64>,
}

impl MemoryTracker {
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            used: Mutex::new(0),
        }
    }

    /// Charge `bytes`; errors with [`ClydeError::OutOfMemory`] if the node's
    /// budget would be exceeded.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let mut used = self.used.lock();
        if *used + bytes > self.capacity {
            return Err(ClydeError::OutOfMemory {
                required: *used + bytes,
                available: self.capacity,
            });
        }
        *used += bytes;
        Ok(())
    }

    pub fn release(&self, bytes: u64) {
        let mut used = self.used.lock();
        *used = used.saturating_sub(bytes);
    }

    pub fn used(&self) -> u64 {
        *self.used.lock()
    }

    pub fn reset(&self) {
        *self.used.lock() = 0;
    }
}

/// Records the peak memory shapes a job charged, for the cost model's OOM
/// check at extrapolated scale: `per_slot` memory is duplicated by every
/// concurrently running slot (Hive's per-task hash tables), `shared` memory
/// has one copy per node (Clydesdale's shared tables).
#[derive(Default)]
pub struct MemoryLedger {
    per_slot: Mutex<u64>,
    shared: Mutex<u64>,
    per_slot_fixed: Mutex<u64>,
    shared_fixed: Mutex<u64>,
}

impl MemoryLedger {
    pub fn new() -> MemoryLedger {
        MemoryLedger::default()
    }

    pub fn note_per_slot(&self, bytes: u64) {
        let mut v = self.per_slot.lock();
        *v = (*v).max(bytes);
    }

    pub fn note_shared(&self, bytes: u64) {
        let mut v = self.shared.lock();
        *v = (*v).max(bytes);
    }

    pub fn note_per_slot_fixed(&self, bytes: u64) {
        let mut v = self.per_slot_fixed.lock();
        *v = (*v).max(bytes);
    }

    pub fn note_shared_fixed(&self, bytes: u64) {
        let mut v = self.shared_fixed.lock();
        *v = (*v).max(bytes);
    }

    pub fn per_slot_fixed(&self) -> u64 {
        *self.per_slot_fixed.lock()
    }

    pub fn shared_fixed(&self) -> u64 {
        *self.shared_fixed.lock()
    }

    pub fn per_slot(&self) -> u64 {
        *self.per_slot.lock()
    }

    pub fn shared(&self) -> u64 {
        *self.shared.lock()
    }
}

/// Where map output goes. Thread-safe because the multi-threaded map runner
/// shares one collector across its join threads (paper Figure 5).
pub trait Collector: Send + Sync {
    /// Emit a (key, value) pair. The key is encoded with the
    /// order-preserving codec so the shuffle can sort bytes.
    fn collect(&self, key: &Row, value: Row);
}

/// The engine's map-output buffer: encoded keys plus values, partition
/// assignment deferred to the shuffle.
#[derive(Default)]
pub struct MapOutputBuffer {
    records: Mutex<Vec<(Vec<u8>, Row)>>,
}

impl MapOutputBuffer {
    pub fn new() -> MapOutputBuffer {
        MapOutputBuffer::default()
    }

    pub fn into_records(self) -> Vec<(Vec<u8>, Row)> {
        self.records.into_inner()
    }

    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl Collector for MapOutputBuffer {
    fn collect(&self, key: &Row, value: Row) {
        let encoded = keycodec::encode_row(key);
        self.records.lock().push((encoded, value));
    }
}

/// Everything a map task (or its runner) can touch. Mirrors what a Hadoop
/// task reaches through `JobConf`, the task attempt context, and statics.
pub struct MapTaskContext<'a> {
    pub conf: &'a JobConf,
    pub split: &'a InputSplit,
    pub input: &'a dyn InputFormat,
    pub io: TaskIo,
    pub node: NodeId,
    /// Threads this task may use (1 for ordinary tasks; all the node's map
    /// slots for Clydesdale's one-task-per-node jobs — Section 5.2's point 3).
    /// This is the number the cost model prices with.
    pub threads: u32,
    /// Host OS threads the runner actually spawns. Usually equals `threads`;
    /// the determinism harness varies it to prove results don't depend on
    /// real scheduling.
    pub host_threads: u32,
    /// Concurrently scheduled tasks of this job on this node (slot pressure);
    /// used to model per-slot memory duplication.
    pub slot_concurrency: u32,
    pub node_state: Arc<NodeState>,
    pub memory: Arc<MemoryTracker>,
    pub ledger: Arc<MemoryLedger>,
    /// Effective bytes this task charged transiently (released at task end).
    pub task_charges: Mutex<u64>,
    pub local_store: Arc<NodeLocalStore>,
    pub dist_cache: Arc<DistCache>,
    pub out: Arc<MapOutputBuffer>,
    pub cost: Arc<Mutex<TaskCost>>,
    /// Wall-clock nanoseconds runners attribute to execution phases
    /// (hash-build, probe, emit). Observability-only; never affects
    /// simulated time.
    pub wall_phases: Mutex<Vec<(Phase, u64)>>,
}

impl MapTaskContext<'_> {
    /// Attribute measured wall-clock time to an execution phase.
    pub fn note_wall_phase(&self, phase: Phase, nanos: u64) {
        if nanos > 0 {
            self.wall_phases.lock().push((phase, nanos));
        }
    }
    /// Emit a map-output record, updating the task's counters.
    pub fn emit(&self, key: &Row, value: Row) {
        let bytes = (key.heap_size() + value.heap_size()) as u64;
        {
            let mut c = self.cost.lock();
            c.emit_records += 1;
            c.emit_bytes += bytes;
        }
        self.out.collect(key, value);
    }

    /// Charge memory that is shared by every task/thread on the node and
    /// lives for the whole job (e.g. Clydesdale's single copy of the
    /// dimension hash tables, kept alive by JVM reuse).
    pub fn charge_memory_shared(&self, bytes: u64) -> Result<()> {
        self.ledger.note_shared(bytes);
        self.memory.charge(bytes)
    }

    /// Charge memory that every concurrently running slot would duplicate
    /// and that dies with the task (e.g. Hive's per-task hash table copies —
    /// the cause of the paper's cluster-A mapjoin OOM failures). The engine
    /// releases these charges when the task finishes.
    pub fn charge_memory_per_slot(&self, bytes: u64) -> Result<()> {
        self.ledger.note_per_slot(bytes);
        let effective = bytes.saturating_mul(u64::from(self.slot_concurrency));
        self.memory.charge(effective)?;
        *self.task_charges.lock() += effective;
        Ok(())
    }

    /// [`TaskContext::charge_memory_shared`] for **scale-invariant** bytes:
    /// structures whose size is bounded by a key range rather than by data
    /// cardinality (e.g. a sparse small-range direct-index array). Charged
    /// against the node budget like any other bytes, but recorded
    /// separately so the cost extrapolator does not scale them with
    /// dimension cardinality.
    pub fn charge_memory_shared_fixed(&self, bytes: u64) -> Result<()> {
        self.ledger.note_shared_fixed(bytes);
        self.memory.charge(bytes)
    }

    /// [`TaskContext::charge_memory_per_slot`] for scale-invariant bytes
    /// (see [`TaskContext::charge_memory_shared_fixed`]).
    pub fn charge_memory_per_slot_fixed(&self, bytes: u64) -> Result<()> {
        self.ledger.note_per_slot_fixed(bytes);
        let effective = bytes.saturating_mul(u64::from(self.slot_concurrency));
        self.memory.charge(effective)?;
        *self.task_charges.lock() += effective;
        Ok(())
    }

    /// Record cost-model counters under the task's lock.
    pub fn add_cost(&self, f: impl FnOnce(&mut TaskCost)) {
        f(&mut self.cost.lock());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::row;

    #[test]
    fn node_state_builds_once() {
        let st = NodeState::new();
        let (v1, built1) = st
            .get_or_try_init("k", || Ok::<_, ClydeError>(vec![1, 2, 3]))
            .unwrap();
        let (v2, built2) = st
            .get_or_try_init("k", || -> Result<Vec<i32>> { panic!("must not rebuild") })
            .unwrap();
        assert!(built1);
        assert!(!built2);
        assert!(Arc::ptr_eq(&v1, &v2));
        assert!(st.contains("k"));
        st.clear();
        assert!(!st.contains("k"));
    }

    #[test]
    fn node_state_init_failure_is_not_cached() {
        let st = NodeState::new();
        let r = st.get_or_try_init::<u32, _>("k", || Err(ClydeError::Plan("boom".into())));
        assert!(r.is_err());
        let (_, built) = st
            .get_or_try_init("k", || Ok::<_, ClydeError>(9u32))
            .unwrap();
        assert!(built);
    }

    #[test]
    fn node_state_type_mismatch_is_an_error() {
        let st = NodeState::new();
        st.get_or_try_init("k", || Ok::<_, ClydeError>(1u32))
            .unwrap();
        let r = st.get_or_try_init::<String, _>("k", || Ok("x".to_string()));
        assert!(r.is_err());
    }

    #[test]
    fn memory_tracker_enforces_capacity() {
        let m = MemoryTracker::new(100);
        m.charge(60).unwrap();
        let err = m.charge(50).unwrap_err();
        assert!(err.is_oom());
        m.release(30);
        m.charge(50).unwrap();
        assert_eq!(m.used(), 80);
        m.reset();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn output_buffer_encodes_keys_sortably() {
        let buf = MapOutputBuffer::new();
        buf.collect(&row![2i64], row!["b"]);
        buf.collect(&row![1i64], row!["a"]);
        let mut records = buf.into_records();
        records.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(records[0].1, row!["a"]);
        assert_eq!(records[1].1, row!["b"]);
    }
}
