//! The probe phase: fact rows against the dimension hash tables.
//!
//! Three implementations of the same logic:
//!
//! * [`probe_block_vec`] — the default vectorized kernel: fact predicates
//!   are evaluated over whole column slices into a reusable *selection
//!   vector*, each dimension table is probed batch-at-a-time over the
//!   surviving indices, and groups are aggregated under packed `u64` keys
//!   of dense per-join aux ids (see [`GroupLayout`]). Group `Row`s are
//!   rematerialized once per task at emit time, not once per fact row;
//! * [`probe_block`] — scalar B-CIF block iteration (Section 5.3): a
//!   row-at-a-time loop over typed column slices;
//! * [`probe_row`] — row-at-a-time over materialized rows, used when the
//!   block-iteration feature is ablated.
//!
//! All use **early-out** (Section 4.2): the first failed dimension probe
//! abandons the row — in the vectorized kernel the selection vector simply
//! shrinks after each join, so later joins probe fewer keys. All three
//! paths produce byte-identical results and identical [`ProbeStats`].
//! Aggregation happens *inside the task* into a group map (the combiner
//! pattern of Figure 4), so a map task emits one record per group, not per
//! fact row.

use crate::config::Features;
use crate::hashtable::{DimTables, NONE_ID};
use clyde_common::{ClydeError, FxHashMap, Result, Row, RowBlock, Schema};
use clyde_ssb::queries::{Aggregate, CompiledFactPred, StarQuery};

/// Index-resolved probe plan against a scan schema (the projected fact
/// columns actually read).
#[derive(Debug, Clone)]
pub struct ProbePlan {
    pub fact_preds: Vec<CompiledFactPred>,
    /// Scan-schema column index of each join's foreign key.
    pub fks: Vec<usize>,
    /// Scan-schema indices of the measure columns (`None` for count(*)).
    pub agg_a: Option<usize>,
    pub agg_b: Option<usize>,
    pub aggregate: Aggregate,
    /// For each group-by column: (join index, aux index within that join).
    pub group_src: Vec<(usize, usize)>,
}

impl ProbePlan {
    /// Compile a star query against the schema of the scanned columns.
    pub fn compile(query: &StarQuery, scan_schema: &Schema) -> Result<ProbePlan> {
        let fact_preds = query
            .fact_preds
            .iter()
            .map(|p| p.compile(scan_schema))
            .collect::<Result<_>>()?;
        let fks = query
            .joins
            .iter()
            .map(|j| scan_schema.index_of(&j.fk))
            .collect::<Result<_>>()?;
        let agg_cols = query.aggregate.columns();
        let agg_a = agg_cols
            .first()
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let agg_b = agg_cols
            .get(1)
            .map(|c| scan_schema.index_of(c))
            .transpose()?;
        let group_src = query
            .group_by
            .iter()
            .map(|g| query.group_col_source(g))
            .collect::<Result<_>>()?;
        Ok(ProbePlan {
            fact_preds,
            fks,
            agg_a,
            agg_b,
            aggregate: query.aggregate.clone(),
            group_src,
        })
    }
}

/// Counters produced by the probe phase, feeding the cost model.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProbeStats {
    /// Rows iterated.
    pub rows: u64,
    /// Individual hash-table probe operations performed (early-out makes
    /// this less than rows × joins).
    pub probes: u64,
    /// Rows surviving all predicates and probes.
    pub survivors: u64,
    /// Joins probed with software prefetching active (direct table cleared
    /// [`PREFETCH_MIN_SLOTS`]). Kernel-specific: the scalar path never
    /// prefetches, so equality deliberately ignores this field.
    pub prefetch_activations: u64,
}

/// Semantic equality: the invariant shared by every kernel variant is the
/// rows/probes/survivors accounting, not which optimization layers fired.
impl PartialEq for ProbeStats {
    fn eq(&self, other: &ProbeStats) -> bool {
        self.rows == other.rows && self.probes == other.probes && self.survivors == other.survivors
    }
}

impl Eq for ProbeStats {}

impl ProbeStats {
    pub fn add(&mut self, other: &ProbeStats) {
        self.rows += other.rows;
        self.probes += other.probes;
        self.survivors += other.survivors;
        self.prefetch_activations += other.prefetch_activations;
    }
}

const MAX_JOINS: usize = 8;

/// Probe one column block, accumulating partial sums per group into `acc`.
pub fn probe_block(
    block: &RowBlock,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    if plan.fks.len() > MAX_JOINS {
        return Err(ClydeError::Plan("too many dimension joins".into()));
    }
    // Typed views of the needed columns. Fact predicates, FKs and measures
    // are all i32 in SSB; non-i32 scan columns are never touched here.
    let i32_slices: Vec<Option<&[i32]>> = block
        .columns()
        .iter()
        .map(|c| match c {
            clyde_common::ColumnData::I32(v) => Some(v.as_slice()),
            _ => None,
        })
        .collect();
    let slice = |idx: usize| -> Result<&[i32]> {
        i32_slices[idx].ok_or_else(|| {
            ClydeError::Plan(format!(
                "scan column {idx} is not i32 but the probe needs it"
            ))
        })
    };
    let fk_slices: Vec<&[i32]> = plan.fks.iter().map(|&i| slice(i)).collect::<Result<_>>()?;
    let pred_slices: Vec<&[i32]> = plan
        .fact_preds
        .iter()
        .map(|p| slice(p.col()))
        .collect::<Result<_>>()?;
    let agg_a = plan.agg_a.map(slice).transpose()?;
    let agg_b = plan.agg_b.map(slice).transpose()?;

    let n = block.len();
    stats.rows += n as u64;
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    'rows: for i in 0..n {
        for (p, s) in plan.fact_preds.iter().zip(&pred_slices) {
            let ok = match *p {
                CompiledFactPred::Between { lo, hi, .. } => {
                    let v = s[i];
                    v >= lo && v <= hi
                }
                CompiledFactPred::Lt { value, .. } => s[i] < value,
            };
            if !ok {
                continue 'rows;
            }
        }
        // Most-selective dimension first: early-out kills the row before
        // the permissive probes run. `matched` stays indexed by the
        // original join index, so group assembly is order-independent.
        for &j in tables.probe_order() {
            stats.probes += 1;
            match tables.tables[j].get(i64::from(fk_slices[j][i])) {
                Some(aux) => matched[j] = Some(aux),
                None => continue 'rows, // early-out
            }
        }
        stats.survivors += 1;
        let key: Row = plan
            .group_src
            .iter()
            .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
            .collect();
        let measure = plan.aggregate.eval_i64(agg_a, agg_b, i);
        let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
        *slot = plan.aggregate.fold(*slot, measure);
    }
    Ok(())
}

/// One group-contributing join inside a [`GroupLayout`]: its dense aux ids
/// occupy `bits` bits of the packed key starting at `shift`.
#[derive(Debug, Clone, Copy)]
struct JoinPack {
    ji: usize,
    shift: u32,
    mask: u64,
}

/// Packed `u64` group-key layout for the vectorized kernel.
///
/// Each group-contributing join gets a bit field wide enough for that
/// dimension table's dense id space ([`crate::hashtable::DimHashTable::num_ids`]); the packed key
/// is the concatenation of the per-join ids. The aux `Row`s behind the ids
/// are only materialized by [`GroupLayout::rematerialize`] at emit time.
#[derive(Debug, Clone)]
pub struct GroupLayout {
    /// Distinct group-contributing joins, in first-appearance order.
    packs: Vec<JoinPack>,
    /// For each `group_src` entry: (index into `packs`, aux column index).
    src: Vec<(usize, usize)>,
    /// Per join index: the shift to OR its id at, if it contributes.
    shift_of: Vec<Option<u32>>,
    total_bits: u32,
}

/// Dense aggregation is used when the whole packed key space fits in this
/// many bits (64 Ki slots, ~512 KiB of `i64`).
const DENSE_BITS: u32 = 16;

impl GroupLayout {
    /// Compute the layout for a plan against built tables. Returns `None`
    /// when the packed key would not fit in 63 bits — the caller falls back
    /// to the scalar kernel with materialized `Row` keys.
    pub fn new(plan: &ProbePlan, tables: &DimTables) -> Option<GroupLayout> {
        let mut packs: Vec<JoinPack> = Vec::new();
        let mut src = Vec::with_capacity(plan.group_src.len());
        let mut shift = 0u32;
        for &(ji, ai) in &plan.group_src {
            let pi = match packs.iter().position(|p| p.ji == ji) {
                Some(pi) => pi,
                None => {
                    let n = tables.tables[ji].num_ids();
                    let bits = if n <= 1 {
                        0
                    } else {
                        64 - ((n - 1) as u64).leading_zeros()
                    };
                    packs.push(JoinPack {
                        ji,
                        shift,
                        mask: if bits == 0 { 0 } else { (1u64 << bits) - 1 },
                    });
                    shift += bits;
                    if shift > 63 {
                        return None;
                    }
                    packs.len() - 1
                }
            };
            src.push((pi, ai));
        }
        let njoins = tables.tables.len();
        let mut shift_of = vec![None; njoins];
        for p in &packs {
            shift_of[p.ji] = Some(p.shift);
        }
        Some(GroupLayout {
            packs,
            src,
            shift_of,
            total_bits: shift,
        })
    }

    /// Whether the packed key space is small enough for a dense array.
    pub fn dense_slots(&self) -> Option<usize> {
        (self.total_bits <= DENSE_BITS).then(|| 1usize << self.total_bits)
    }

    /// Expand a packed key back into the group-by `Row` (emit time).
    pub fn rematerialize(&self, key: u64, tables: &DimTables) -> Row {
        self.src
            .iter()
            .map(|&(pi, ai)| {
                let p = self.packs[pi];
                let id = ((key >> p.shift) & p.mask) as u32;
                tables.tables[p.ji].aux(id).at(ai).clone()
            })
            .collect()
    }
}

/// Per-thread group accumulator for the vectorized kernel: a dense array
/// when the packed key space is small (e.g. flight 1 has no group-by at
/// all), a hash map on `u64` keys otherwise. Either way the keys stay
/// packed ids — no `Row` allocation on the hot path.
#[derive(Debug)]
pub enum GroupAcc {
    Dense { slots: Vec<i64>, hit: Vec<bool> },
    Sparse(FxHashMap<u64, i64>),
}

impl GroupAcc {
    pub fn new(layout: &GroupLayout, aggregate: &Aggregate) -> GroupAcc {
        match layout.dense_slots() {
            Some(n) => GroupAcc::Dense {
                slots: vec![aggregate.identity(); n],
                hit: vec![false; n],
            },
            None => GroupAcc::Sparse(FxHashMap::default()),
        }
    }

    #[inline]
    fn fold(&mut self, key: u64, measure: i64, aggregate: &Aggregate) {
        match self {
            GroupAcc::Dense { slots, hit } => {
                let k = key as usize;
                slots[k] = aggregate.fold(slots[k], measure);
                hit[k] = true;
            }
            GroupAcc::Sparse(map) => {
                let slot = map.entry(key).or_insert_with(|| aggregate.identity());
                *slot = aggregate.fold(*slot, measure);
            }
        }
    }

    /// Fold another accumulator (same layout) into this one.
    pub fn merge(&mut self, other: GroupAcc, aggregate: &Aggregate) {
        for (key, v) in other.entries() {
            self.fold(key, v, aggregate);
        }
    }

    /// The populated (packed key, partial aggregate) pairs.
    pub fn entries(&self) -> Vec<(u64, i64)> {
        match self {
            GroupAcc::Dense { slots, hit } => slots
                .iter()
                .zip(hit)
                .enumerate()
                .filter(|(_, (_, &h))| h)
                .map(|(k, (&v, _))| (k as u64, v))
                .collect(),
            GroupAcc::Sparse(map) => map.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }
}

/// Reusable scratch for [`probe_block_vec`]: the selection vector and the
/// packed group keys of the rows it selects. One per probe thread; the
/// buffers grow to the largest block seen and are then reused without
/// clearing, so the hot loop neither allocates nor memsets.
#[derive(Debug, Default)]
pub struct SelBuf {
    sel: Vec<u32>,
    keys: Vec<u64>,
}

/// Toggles for the vectorized kernel's optimization layers (DESIGN.md §10).
/// Every combination preserves scalar semantics and exact [`ProbeStats`];
/// the flags only choose *how* the same selection vector is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOpts {
    /// Branch-free, fixed-width-lane selection compaction (autovectorized
    /// predicate lanes + cursor-advance stores) instead of branchy pushes.
    pub simd_compaction: bool,
    /// Batched index-then-prefetch-then-probe over large direct-index
    /// tables.
    pub prefetch: bool,
    /// Consult block zone maps: skip per-row work for fully-covered
    /// predicates, drop provably disjoint blocks whole.
    pub zone_fullcover: bool,
}

impl Default for KernelOpts {
    fn default() -> KernelOpts {
        KernelOpts::all_on()
    }
}

impl KernelOpts {
    pub fn all_on() -> KernelOpts {
        KernelOpts {
            simd_compaction: true,
            prefetch: true,
            zone_fullcover: true,
        }
    }

    /// Every layer off: the pre-optimization vectorized kernel.
    pub fn none() -> KernelOpts {
        KernelOpts {
            simd_compaction: false,
            prefetch: false,
            zone_fullcover: false,
        }
    }

    pub fn from_features(f: &Features) -> KernelOpts {
        KernelOpts {
            simd_compaction: f.simd_compaction,
            prefetch: f.prefetch,
            zone_fullcover: f.zone_fullcover,
        }
    }

    /// All 8 flag combinations, for equivalence sweeps.
    pub fn all_combinations() -> Vec<KernelOpts> {
        let mut out = Vec::with_capacity(8);
        for bits in 0u8..8 {
            out.push(KernelOpts {
                simd_compaction: bits & 1 != 0,
                prefetch: bits & 2 != 0,
                zone_fullcover: bits & 4 != 0,
            });
        }
        out
    }
}

#[inline]
fn pred_ok(p: &CompiledFactPred, v: i32) -> bool {
    match *p {
        CompiledFactPred::Between { lo, hi, .. } => v >= lo && v <= hi,
        CompiledFactPred::Lt { value, .. } => v < value,
    }
}

/// How a block's zone relates to one predicate.
enum ZoneRel {
    /// Every row in the block satisfies the predicate: skip its per-row
    /// evaluation entirely.
    Covered,
    /// No row can satisfy it: drop the block.
    Disjoint,
    /// Mixed or unknown: evaluate per row.
    Partial,
}

fn zone_relation(p: &CompiledFactPred, zone: Option<(i32, i32)>) -> ZoneRel {
    let Some((zlo, zhi)) = zone else {
        return ZoneRel::Partial;
    };
    match *p {
        CompiledFactPred::Between { lo, hi, .. } => {
            if zlo >= lo && zhi <= hi {
                ZoneRel::Covered
            } else if zhi < lo || zlo > hi {
                ZoneRel::Disjoint
            } else {
                ZoneRel::Partial
            }
        }
        CompiledFactPred::Lt { value, .. } => {
            if zhi < value {
                ZoneRel::Covered
            } else if zlo >= value {
                ZoneRel::Disjoint
            } else {
                ZoneRel::Partial
            }
        }
    }
}

/// Lane width of the branch-free predicate stage: compares fill a
/// fixed-width mask (which LLVM autovectorizes), then a cursor-advance loop
/// expands the mask into selection indices without a data-dependent branch.
const PRED_LANE: usize = 64;

/// Branch-free first-predicate selection fill over `vals[0..n]` into
/// `sel[0..n]` (pre-sized by the caller, never zero-filled); returns the
/// survivor count. Public and never inlined so the codegen smoke check can
/// locate its symbol in the compiled binary and verify the compare lanes
/// vectorized.
#[inline(never)]
pub fn compact_sel_first(sel: &mut [u32], n: usize, p: &CompiledFactPred, vals: &[i32]) -> usize {
    let mut ok = [false; PRED_LANE];
    let mut w = 0usize;
    let mut base = 0usize;
    while base < n {
        let m = PRED_LANE.min(n - base);
        match *p {
            CompiledFactPred::Between { lo, hi, .. } => {
                for k in 0..m {
                    let v = vals[base + k];
                    ok[k] = (v >= lo) & (v <= hi);
                }
            }
            CompiledFactPred::Lt { value, .. } => {
                for k in 0..m {
                    ok[k] = vals[base + k] < value;
                }
            }
        }
        for (k, &hit) in ok.iter().enumerate().take(m) {
            sel[w] = (base + k) as u32;
            w += usize::from(hit);
        }
        base += m;
    }
    w
}

/// Branch-free in-place compaction of `sel[0..live]` by a further predicate
/// (the gathers through `sel` keep this scalar, but the cursor advance
/// stays unconditional); returns the new live count.
fn compact_sel_next(sel: &mut [u32], live: usize, p: &CompiledFactPred, vals: &[i32]) -> usize {
    let mut w = 0usize;
    for r in 0..live {
        let i = sel[r];
        sel[w] = i;
        w += usize::from(pred_ok(p, vals[i as usize]));
    }
    w
}

/// Prefetch only direct-index tables at least this many slots large
/// (u32 slots — 2 MiB, past L2): smaller ones are cache-resident after a
/// pass, where a prefetch is measured pure overhead (~20% slower on the
/// L2-resident date table — the probe loops are issue-bound, so even the
/// few extra prefetch-address instructions cost).
/// Public so the `profile` bench target can size its fixture to provably
/// clear the gate (and report when it does not).
pub const PREFETCH_MIN_SLOTS: usize = 1 << 19;

/// How many rows ahead the probe loops prefetch the table slot: far enough
/// to cover a cache miss, near enough to stay inside the block.
const PREFETCH_DIST: usize = 16;

/// Software-prefetch the cache line holding `p` into all levels (no-op on
/// non-x86_64 targets).
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure performance hint with no memory effects.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Probe one direct-index table over the current selection, compacting
/// `sel`/`keys` in place; returns the survivor count. With `FUSED` the
/// selection is the identity `0..len` (the caller skipped materializing
/// it) and the packed-key base is 0. In-place compaction is safe because
/// the write cursor never passes the read cursor.
///
/// `branch_free` picks the store discipline: unconditional select + store
/// with a cursor that advances by the hit bit (wins when hits are
/// unpredictable), or plain branches (wins when the table is so selective
/// — or so permissive — that the branch predictor is nearly always right).
/// `do_prefetch` issues a software prefetch [`PREFETCH_DIST`] rows ahead
/// inside the same pass, hiding table-slot latency without a second loop.
#[allow(clippy::too_many_arguments)]
fn probe_direct<const FUSED: bool>(
    len: usize,
    sel: &mut [u32],
    keys: &mut [u64],
    fk: &[i32],
    min: i64,
    ids: &[u32],
    shift: u32,
    contrib: u64,
    branch_free: bool,
    do_prefetch: bool,
) -> usize {
    // Direct-table keys come from i32 columns, so the slot index fits u32
    // arithmetic: a negative or overlarge difference wraps above the slot
    // count and fails the range check (ids never approach 2^31 slots).
    let min32 = min as u32;
    let end = ids.len();
    let mut w = 0usize;
    macro_rules! ahead {
        ($r:expr) => {
            if do_prefetch {
                let r2 = $r + PREFETCH_DIST;
                if r2 < len {
                    let i2 = if FUSED { r2 } else { sel[r2] as usize };
                    let idx2 = (fk[i2] as u32).wrapping_sub(min32) as usize;
                    if idx2 < end {
                        prefetch_read(&ids[idx2]);
                    }
                }
            }
        };
    }
    if FUSED && contrib == 0 && branch_free {
        // Branch-free and key-free: the join neither reads packed keys
        // (fused: base is 0) nor adds bits, so the scattered key store is
        // replaced by one sequential fill of the survivor prefix.
        for r in 0..len {
            ahead!(r);
            let idx = (fk[r] as u32).wrapping_sub(min32) as usize;
            let in_range = idx < end;
            let id = ids[if in_range { idx } else { 0 }];
            let hit = in_range & (id != NONE_ID);
            sel[w] = r as u32;
            w += usize::from(hit);
        }
        keys[..w].fill(0);
    } else if branch_free {
        // Misses write garbage at `w` that the next hit (or the caller's
        // live count) makes unreachable.
        for r in 0..len {
            ahead!(r);
            let i = if FUSED { r } else { sel[r] as usize };
            let idx = (fk[i] as u32).wrapping_sub(min32) as usize;
            let in_range = idx < end;
            let id = ids[if in_range { idx } else { 0 }];
            let hit = in_range & (id != NONE_ID);
            sel[w] = i as u32;
            let base = if FUSED { 0 } else { keys[r] };
            keys[w] = base | ((u64::from(id) << shift) & contrib);
            w += usize::from(hit);
        }
    } else if FUSED && contrib == 0 {
        // The join neither reads packed keys (fused: base is 0) nor adds
        // bits to them — every surviving key is 0, so one sequential fill
        // afterwards replaces a scattered store per row.
        for r in 0..len {
            ahead!(r);
            let idx = (fk[r] as u32).wrapping_sub(min32) as usize;
            if idx < end && ids[idx] != NONE_ID {
                sel[w] = r as u32;
                w += 1;
            }
        }
        keys[..w].fill(0);
    } else {
        for r in 0..len {
            ahead!(r);
            let i = if FUSED { r } else { sel[r] as usize };
            let idx = (fk[i] as u32).wrapping_sub(min32) as usize;
            if idx < end {
                let id = ids[idx];
                if id != NONE_ID {
                    sel[w] = i as u32;
                    let base = if FUSED { 0 } else { keys[r] };
                    keys[w] = base | ((u64::from(id) << shift) & contrib);
                    w += 1;
                }
            }
        }
    }
    w
}

/// Hit-rate band in which the branch-free probe loop is used (when enabled):
/// outside it the branch predictor is nearly always right and branchy code
/// skips the unconditional stores.
const BRANCH_FREE_BAND: (f64, f64) = (0.08, 0.92);

/// Vectorized probe of one column block (the default kernel).
///
/// Same semantics and identical [`ProbeStats`] as [`probe_block`] for every
/// [`KernelOpts`] combination: each fact predicate and each join shrinks
/// the selection vector, and a join only probes indices that survived
/// every earlier stage — early-out as vector compaction. Aggregates land
/// in `acc` under packed group-id keys; use [`GroupLayout::rematerialize`]
/// to recover the group `Row`s.
///
/// The optimization stack (each layer ablatable, DESIGN.md §10):
/// zone-fullcover drops or pre-passes whole blocks from their zone maps;
/// the predicate stage compacts branch-free over fixed-width lanes; joins
/// against direct-index tables run select+cursor-advance loops with
/// optional batched software prefetch; and when no predicate survives the
/// zone stage, the first join fuses with selection-vector creation so the
/// identity selection is never materialized.
#[allow(clippy::too_many_arguments)]
pub fn probe_block_vec(
    block: &RowBlock,
    plan: &ProbePlan,
    tables: &DimTables,
    layout: &GroupLayout,
    acc: &mut GroupAcc,
    buf: &mut SelBuf,
    stats: &mut ProbeStats,
    opts: KernelOpts,
) -> Result<()> {
    if plan.fks.len() > MAX_JOINS {
        return Err(ClydeError::Plan("too many dimension joins".into()));
    }
    let i32_slices: Vec<Option<&[i32]>> = block
        .columns()
        .iter()
        .map(|c| match c {
            clyde_common::ColumnData::I32(v) => Some(v.as_slice()),
            _ => None,
        })
        .collect();
    let slice = |idx: usize| -> Result<&[i32]> {
        i32_slices[idx].ok_or_else(|| {
            ClydeError::Plan(format!(
                "scan column {idx} is not i32 but the probe needs it"
            ))
        })
    };
    let fk_slices: Vec<&[i32]> = plan.fks.iter().map(|&i| slice(i)).collect::<Result<_>>()?;
    let pred_slices: Vec<&[i32]> = plan
        .fact_preds
        .iter()
        .map(|p| slice(p.col()))
        .collect::<Result<_>>()?;
    let agg_a = plan.agg_a.map(slice).transpose()?;
    let agg_b = plan.agg_b.map(slice).transpose()?;

    let n = block.len();
    stats.rows += n as u64;
    let SelBuf { sel, keys } = buf;
    // Capacity, not contents: `sel`/`keys` keep their maximum length across
    // blocks and are never zero-filled — every slot read below was written
    // by an earlier stage of the same block. (A per-block `resize(n, 0)`
    // memset costs more than the probes it feeds.)
    if sel.len() < n {
        sel.resize(n, 0);
        keys.resize(n, 0);
    }

    // Zone stage: a predicate whose range covers the block's zone is
    // dropped (every row passes); a disjoint one rejects the block with
    // zero probes — exactly what the scalar loop would count.
    let mut active: Vec<(&CompiledFactPred, &[i32])> = Vec::with_capacity(plan.fact_preds.len());
    for (p, s) in plan.fact_preds.iter().zip(&pred_slices) {
        let zone = if opts.zone_fullcover {
            block.zone(p.col())
        } else {
            None
        };
        match zone_relation(p, zone) {
            ZoneRel::Covered => {}
            ZoneRel::Disjoint => return Ok(()),
            ZoneRel::Partial => active.push((p, s)),
        }
    }

    // Predicate stage: build the selection vector. The first active
    // predicate filters the full index range directly; later ones compact
    // in place. With no active predicate the identity selection is left
    // implicit for the first join to fuse with.
    let fuse_first_join = active.is_empty() && !fk_slices.is_empty();
    let mut live: usize;
    if let Some((&(p, s), rest)) = active.split_first() {
        if opts.simd_compaction {
            live = compact_sel_first(sel, n, p, s);
        } else {
            let mut w = 0usize;
            for (i, &v) in s.iter().enumerate().take(n) {
                if pred_ok(p, v) {
                    sel[w] = i as u32;
                    w += 1;
                }
            }
            live = w;
        }
        for &(p, s) in rest {
            if opts.simd_compaction {
                live = compact_sel_next(sel, live, p, s);
            } else {
                let mut w = 0;
                for r in 0..live {
                    let i = sel[r];
                    if pred_ok(p, s[i as usize]) {
                        sel[w] = i;
                        w += 1;
                    }
                }
                live = w;
            }
        }
        // The first join ORs its id into `keys[r]`; clear only the live
        // prefix it will read.
        keys[..live].fill(0);
    } else if fk_slices.is_empty() {
        // No predicates and no joins: everything survives.
        for (i, s) in sel.iter_mut().enumerate().take(n) {
            *s = i as u32;
        }
        keys[..n].fill(0);
        live = n;
    } else {
        // Fused: the identity selection is never materialized; the first
        // join writes `sel`/`keys` from scratch.
        live = n;
    }

    // Join stage: probe each dimension over the surviving indices — most
    // selective first ([`DimTables::probe_order`]) so the selection vector
    // collapses as early as possible — packing group-contributing ids into
    // `keys` as the vector compacts. Per join: shift and a contribution
    // mask (all-ones when the join's id is part of the packed key, zero
    // otherwise) keep the inner loops branch-free.
    for (k, &j) in tables.probe_order().iter().enumerate() {
        let fk_col = &fk_slices[j];
        let (shift, contrib) = match layout.shift_of[j] {
            Some(sh) => (sh, u64::MAX),
            None => (0u32, 0u64),
        };
        let table = &tables.tables[j];
        let fused = fuse_first_join && k == 0;
        let len = if fused { n } else { live };
        stats.probes += len as u64;
        live = match table.direct_parts() {
            Some((min, ids)) if !ids.is_empty() => {
                let rate = table.hit_rate();
                let branch_free = opts.simd_compaction
                    && rate >= BRANCH_FREE_BAND.0
                    && rate <= BRANCH_FREE_BAND.1;
                let do_prefetch = opts.prefetch && ids.len() >= PREFETCH_MIN_SLOTS;
                if do_prefetch {
                    stats.prefetch_activations += 1;
                }
                if fused {
                    probe_direct::<true>(
                        len,
                        sel,
                        keys,
                        fk_col,
                        min,
                        ids,
                        shift,
                        contrib,
                        branch_free,
                        do_prefetch,
                    )
                } else {
                    probe_direct::<false>(
                        len,
                        sel,
                        keys,
                        fk_col,
                        min,
                        ids,
                        shift,
                        contrib,
                        branch_free,
                        do_prefetch,
                    )
                }
            }
            _ => {
                // Hash-probe fallback (key range too wide for a direct
                // table, or an empty build side).
                let map = table.id_map();
                let mut w = 0usize;
                for r in 0..len {
                    let i = if fused { r } else { sel[r] as usize };
                    if let Some(&id) = map.get(&i64::from(fk_col[i])) {
                        sel[w] = i as u32;
                        let base = if fused { 0 } else { keys[r] };
                        keys[w] = base | ((u64::from(id) << shift) & contrib);
                        w += 1;
                    }
                }
                w
            }
        };
    }
    stats.survivors += live as u64;

    // Aggregate stage: fold each survivor's measure into its packed group.
    for r in 0..live {
        let measure = plan.aggregate.eval_i64(agg_a, agg_b, sel[r] as usize);
        acc.fold(keys[r], measure, &plan.aggregate);
    }
    Ok(())
}

/// Row-at-a-time probe (block iteration ablated): same semantics as
/// [`probe_block`] over a materialized row of the scan schema.
pub fn probe_row(
    row: &Row,
    plan: &ProbePlan,
    tables: &DimTables,
    acc: &mut FxHashMap<Row, i64>,
    stats: &mut ProbeStats,
) -> Result<()> {
    stats.rows += 1;
    let geti = |idx: usize| -> Result<i64> {
        row.at(idx)
            .as_i64()
            .ok_or_else(|| ClydeError::Plan(format!("scan column {idx} is not an integer")))
    };
    for p in &plan.fact_preds {
        let ok = match *p {
            CompiledFactPred::Between { col, lo, hi } => {
                let v = geti(col)?;
                v >= i64::from(lo) && v <= i64::from(hi)
            }
            CompiledFactPred::Lt { col, value } => geti(col)? < i64::from(value),
        };
        if !ok {
            return Ok(());
        }
    }
    let mut matched: [Option<&Row>; MAX_JOINS] = [None; MAX_JOINS];
    // Same selectivity-ordered probing as the block kernels, so per-join
    // probe counters agree across the block-iteration ablation.
    for &j in tables.probe_order() {
        stats.probes += 1;
        match tables.tables[j].get(geti(plan.fks[j])?) {
            Some(aux) => matched[j] = Some(aux),
            None => return Ok(()),
        }
    }
    stats.survivors += 1;
    let key: Row = plan
        .group_src
        .iter()
        .map(|&(ji, ai)| matched[ji].expect("matched above").at(ai).clone())
        .collect();
    let measure = match (&plan.aggregate, plan.agg_a, plan.agg_b) {
        (Aggregate::SumColumn(_), Some(a), _)
        | (Aggregate::MinColumn(_), Some(a), _)
        | (Aggregate::MaxColumn(_), Some(a), _) => geti(a)?,
        (Aggregate::SumProduct(_, _), Some(a), Some(b)) => geti(a)? * geti(b)?,
        (Aggregate::SumDiff(_, _), Some(a), Some(b)) => geti(a)? - geti(b)?,
        (Aggregate::CountStar, _, _) => 1,
        _ => return Err(ClydeError::Plan("aggregate missing measure column".into())),
    };
    let slot = acc.entry(key).or_insert_with(|| plan.aggregate.identity());
    *slot = plan.aggregate.fold(*slot, measure);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clyde_common::RowBlockBuilder;
    use clyde_ssb::gen::SsbGen;
    use clyde_ssb::queries::query_by_id;
    use clyde_ssb::schema;

    /// Shared fixture: SF 0.005 data, Q2.1 plan+tables.
    fn fixture() -> (
        clyde_ssb::SsbData,
        StarQuery,
        Schema,
        Vec<usize>,
        ProbePlan,
        DimTables,
    ) {
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q2.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let scan_cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&scan_cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        (data, q, scan_schema, scan_cols, plan, tables)
    }

    fn block_of(data: &clyde_ssb::SsbData, scan_schema: &Schema, cols: &[usize]) -> RowBlock {
        let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
        let mut b = RowBlockBuilder::new(&dtypes);
        for lo in &data.lineorder {
            b.push_row(&lo.project(cols)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn block_probe_matches_reference() {
        let (data, q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();

        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(rows, expect);
        assert_eq!(stats.rows, data.lineorder.len() as u64);
        assert!(stats.survivors > 0);
    }

    #[test]
    fn row_probe_matches_block_probe() {
        let (data, _q, _scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &_scan_schema, &cols);
        let mut acc_block = FxHashMap::default();
        let mut st1 = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc_block, &mut st1).unwrap();

        let mut acc_row = FxHashMap::default();
        let mut st2 = ProbeStats::default();
        for lo in &data.lineorder {
            probe_row(&lo.project(&cols), &plan, &tables, &mut acc_row, &mut st2).unwrap();
        }
        assert_eq!(acc_block, acc_row);
        assert_eq!(st1, st2, "both paths must count identically");
    }

    #[test]
    fn early_out_reduces_probe_count() {
        // Build a variant of Q2.1 that probes the selective part join first
        // (Clydesdale is free to choose probe order; this tests early-out).
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        q.joins.rotate_left(1); // part, supplier, date
        assert_eq!(q.joins[0].dimension, "part");
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        // Part's category filter (≈ 1/25) gates the remaining probes, so
        // total probes stay far below rows × 3 joins.
        assert!(
            stats.probes < stats.rows * 2,
            "early-out broken: {} probes for {} rows",
            stats.probes,
            stats.rows
        );
        // But at least one probe per row happened.
        assert!(stats.probes >= stats.rows);
        // Early-out never changes results: reordered joins give the same
        // answer as the reference.
        let mut rows: Vec<Row> = acc
            .into_iter()
            .map(|(k, v)| k.concat(&clyde_common::row![v]))
            .collect();
        q.sort_result(&mut rows);
        let expect = clyde_ssb::reference_answer(&data, &query_by_id("Q2.1").unwrap()).unwrap();
        // Group-by order differs only if aux sources moved; Q2.1 groups by
        // (d_year, p_brand1) regardless of join order.
        assert_eq!(rows, expect);
    }

    #[test]
    fn fact_predicates_gate_probing() {
        // Q1.1 has fact predicates; rows failing them must not probe at all.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q1.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut stats = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut stats).unwrap();
        assert!(stats.probes < stats.rows / 2, "predicates must gate probes");
        // Single group (no group-by).
        assert_eq!(acc.len(), 1);
        let expect = clyde_ssb::reference_answer(&data, &q).unwrap();
        assert_eq!(
            // clyde-lint: allow(unordered, reason=asserted single-entry map, no order to observe)
            acc.values().next().copied().unwrap(),
            expect[0].at(0).as_i64().unwrap()
        );
    }

    #[test]
    fn prefetch_activations_count_large_direct_tables() {
        // Q4.1's part join keeps 2/5 of the dimension (mfgr in #1/#2), dense
        // enough for a direct table over the full key range — hand a part
        // table larger than PREFETCH_MIN_SLOTS to open the prefetch gate.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q4.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let big_parts: Vec<Row> = (1..=(PREFETCH_MIN_SLOTS as i32 + 16))
            .map(|key| {
                clyde_common::row![
                    key, "part", "MFGR#1", "MFGR#11", "MFGR#111", "red", "STANDARD", 1i32, "BOX"
                ]
            })
            .collect();
        let tables = DimTables::build_all(&q.joins, |dim| {
            if dim == "part" {
                Ok(big_parts.clone())
            } else {
                Ok(data.dimension(dim).unwrap().to_vec())
            }
        })
        .unwrap();
        assert!(
            tables.tables[2].direct_parts().unwrap().1.len() >= PREFETCH_MIN_SLOTS,
            "fixture must clear the prefetch threshold"
        );
        let block = block_of(&data, &scan_schema, &cols);

        let (acc_on, on) = vec_probe_opts(&block, &plan, &tables, KernelOpts::all_on());
        assert!(on.prefetch_activations > 0, "gate open: counter must fire");
        let (acc_off, off) = vec_probe_opts(
            &block,
            &plan,
            &tables,
            KernelOpts {
                prefetch: false,
                ..KernelOpts::all_on()
            },
        );
        assert_eq!(off.prefetch_activations, 0);
        // Prefetching changes memory timing only: identical results and
        // identical semantic stats (the manual PartialEq ignores the
        // activation counter by design).
        assert_eq!(acc_on, acc_off);
        assert_eq!(on, off);

        let mut acc_scalar = FxHashMap::default();
        let mut scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc_scalar, &mut scalar).unwrap();
        assert_eq!(
            scalar.prefetch_activations, 0,
            "scalar path never prefetches"
        );
        assert_eq!(on, scalar);
        assert_eq!(acc_on, acc_scalar);

        // At the committed bench scale the gate stays closed (ROADMAP PR-5
        // follow-up): the same query on real SF 0.005 dimensions never fires.
        let small = DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
            .unwrap();
        let (_, st) = vec_probe_opts(&block, &plan, &small, KernelOpts::all_on());
        assert_eq!(st.prefetch_activations, 0);
    }

    /// Run the vectorized kernel and rematerialize its packed groups.
    fn vec_probe(
        block: &RowBlock,
        plan: &ProbePlan,
        tables: &DimTables,
    ) -> (FxHashMap<Row, i64>, ProbeStats) {
        vec_probe_opts(block, plan, tables, KernelOpts::all_on())
    }

    fn vec_probe_opts(
        block: &RowBlock,
        plan: &ProbePlan,
        tables: &DimTables,
        opts: KernelOpts,
    ) -> (FxHashMap<Row, i64>, ProbeStats) {
        let layout = GroupLayout::new(plan, tables).expect("key fits");
        let mut acc = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut stats = ProbeStats::default();
        probe_block_vec(
            block, plan, tables, &layout, &mut acc, &mut buf, &mut stats, opts,
        )
        .unwrap();
        // Distinct dimension rows can share aux values (e.g. 365 dates per
        // d_year), so distinct packed keys may rematerialize to the same
        // group row — emit-time merging must fold, not overwrite.
        let mut rows: FxHashMap<Row, i64> = FxHashMap::default();
        for (k, v) in acc.entries() {
            let key = layout.rematerialize(k, tables);
            let slot = rows.entry(key).or_insert_with(|| plan.aggregate.identity());
            *slot = plan.aggregate.fold(*slot, v);
        }
        (rows, stats)
    }

    #[test]
    fn vectorized_matches_scalar_exactly() {
        let (data, _q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar, "kernels must count identically");
    }

    #[test]
    fn vectorized_handles_fact_predicates_and_dense_acc() {
        // Q1.1: fact predicates plus no group-by — the packed key space is
        // a single slot, so the dense accumulator path runs.
        let data = SsbGen::new(0.005, 46).gen_all();
        let q = query_by_id("Q1.1").unwrap();
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let layout = GroupLayout::new(&plan, &tables).unwrap();
        assert_eq!(layout.dense_slots(), Some(1));
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar);
        assert!(
            st_vec.probes < st_vec.rows / 2,
            "predicates must gate probes"
        );
    }

    #[test]
    fn vectorized_early_out_counts_match_scalar() {
        // Selective join first (part): the selection vector shrinks after
        // join 1, so joins 2..n probe fewer keys — and the probe counter
        // must agree with the scalar early-out to the last probe.
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        q.joins.rotate_left(1);
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut acc, &mut st_scalar).unwrap();
        let (vec_acc, st_vec) = vec_probe(&block, &plan, &tables);
        assert_eq!(vec_acc, acc);
        assert_eq!(st_vec, st_scalar);
        assert!(st_vec.probes < st_vec.rows * 2);
    }

    #[test]
    fn group_acc_merge_folds_partials() {
        let (data, _q, scan_schema, cols, plan, tables) = fixture();
        let block = block_of(&data, &scan_schema, &cols);
        let layout = GroupLayout::new(&plan, &tables).unwrap();
        // Probe the same block into two accumulators, merge, and compare
        // against a doubled scalar run.
        let mut a = GroupAcc::new(&layout, &plan.aggregate);
        let mut b = GroupAcc::new(&layout, &plan.aggregate);
        let mut buf = SelBuf::default();
        let mut st = ProbeStats::default();
        let opts = KernelOpts::all_on();
        probe_block_vec(
            &block, &plan, &tables, &layout, &mut a, &mut buf, &mut st, opts,
        )
        .unwrap();
        probe_block_vec(
            &block, &plan, &tables, &layout, &mut b, &mut buf, &mut st, opts,
        )
        .unwrap();
        a.merge(b, &plan.aggregate);

        let mut scalar = FxHashMap::default();
        let mut st2 = ProbeStats::default();
        probe_block(&block, &plan, &tables, &mut scalar, &mut st2).unwrap();
        probe_block(&block, &plan, &tables, &mut scalar, &mut st2).unwrap();
        let mut merged: FxHashMap<Row, i64> = FxHashMap::default();
        for (k, v) in a.entries() {
            let key = layout.rematerialize(k, &tables);
            let slot = merged
                .entry(key)
                .or_insert_with(|| plan.aggregate.identity());
            *slot = plan.aggregate.fold(*slot, v);
        }
        assert_eq!(merged, scalar);
        assert_eq!(st, st2);
    }

    #[test]
    fn compile_rejects_missing_columns() {
        let q = query_by_id("Q2.1").unwrap();
        let tiny = Schema::new(vec![clyde_common::Field::i32("lo_partkey")]);
        assert!(ProbePlan::compile(&q, &tiny).is_err());
    }

    #[test]
    fn every_kernel_opts_combination_matches_scalar() {
        // The optimization layers are pure implementation choices: all 8
        // flag combinations must produce the scalar kernel's aggregates
        // and exact counters, on both a predicate-free (Q2.1) and a
        // predicate-heavy (Q1.1) shape, over odd block boundaries.
        let data = SsbGen::new(0.005, 46).gen_all();
        for qid in ["Q2.1", "Q1.1"] {
            let q = query_by_id(qid).unwrap();
            let fact_schema = schema::lineorder_schema();
            let cols: Vec<usize> = q
                .fact_columns()
                .iter()
                .map(|c| fact_schema.index_of(c).unwrap())
                .collect();
            let scan_schema = fact_schema.project(&cols);
            let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
            let tables =
                DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                    .unwrap();
            let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
            let blocks: Vec<RowBlock> = data
                .lineorder
                .chunks(1000)
                .map(|chunk| {
                    let mut b = RowBlockBuilder::new(&dtypes);
                    for r in chunk {
                        b.push_row(&r.project(&cols)).unwrap();
                    }
                    b.finish()
                })
                .collect();
            let mut scalar = FxHashMap::default();
            let mut st_scalar = ProbeStats::default();
            for b in &blocks {
                probe_block(b, &plan, &tables, &mut scalar, &mut st_scalar).unwrap();
            }
            for opts in KernelOpts::all_combinations() {
                let layout = GroupLayout::new(&plan, &tables).unwrap();
                let mut acc = GroupAcc::new(&layout, &plan.aggregate);
                let mut buf = SelBuf::default();
                let mut st = ProbeStats::default();
                for b in &blocks {
                    probe_block_vec(
                        b, &plan, &tables, &layout, &mut acc, &mut buf, &mut st, opts,
                    )
                    .unwrap();
                }
                let mut rows: FxHashMap<Row, i64> = FxHashMap::default();
                for (k, v) in acc.entries() {
                    let key = layout.rematerialize(k, &tables);
                    let slot = rows.entry(key).or_insert_with(|| plan.aggregate.identity());
                    *slot = plan.aggregate.fold(*slot, v);
                }
                assert_eq!(rows, scalar, "{qid} {opts:?}");
                assert_eq!(st, st_scalar, "{qid} {opts:?} counters diverge");
            }
        }
    }

    #[test]
    fn zone_fullcover_skips_disjoint_and_covered_blocks() {
        // A block entirely outside a predicate's range is rejected with
        // zero probes; one entirely inside skips predicate work but still
        // probes every row — and both behave exactly like the scalar loop.
        let data = SsbGen::new(0.005, 46).gen_all();
        let mut q = query_by_id("Q2.1").unwrap();
        // Add a quantity predicate so Q2.1 gains a zone-checkable column.
        q.fact_preds.push(clyde_ssb::queries::FactPred::I32Between {
            column: "lo_quantity".into(),
            lo: 1,
            hi: 50,
        });
        let fact_schema = schema::lineorder_schema();
        let cols: Vec<usize> = q
            .fact_columns()
            .iter()
            .map(|c| fact_schema.index_of(c).unwrap())
            .collect();
        let scan_schema = fact_schema.project(&cols);
        let plan = ProbePlan::compile(&q, &scan_schema).unwrap();
        let tables =
            DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
                .unwrap();
        let block = block_of(&data, &scan_schema, &cols);
        // lo_quantity spans 1..=50, so [1, 50] fully covers every block and
        // [100, 200] is disjoint from every block.
        let opts = KernelOpts::all_on();
        let layout = GroupLayout::new(&plan, &tables).unwrap();
        let run = |plan: &ProbePlan, opts: KernelOpts| {
            let mut acc = GroupAcc::new(&layout, &plan.aggregate);
            let mut buf = SelBuf::default();
            let mut st = ProbeStats::default();
            probe_block_vec(
                &block, plan, &tables, &layout, &mut acc, &mut buf, &mut st, opts,
            )
            .unwrap();
            (acc.entries().len(), st)
        };
        let (groups_on, st_on) = run(&plan, opts);
        let (groups_off, st_off) = run(&plan, KernelOpts::none());
        assert_eq!(groups_on, groups_off);
        assert_eq!(st_on, st_off, "covered block must still probe everything");
        assert!(st_on.probes > 0);

        let mut disjoint = plan.clone();
        disjoint.fact_preds = vec![clyde_ssb::queries::CompiledFactPred::Between {
            col: plan.fact_preds[0].col(),
            lo: 100,
            hi: 200,
        }];
        let (groups_dis, st_dis) = run(&disjoint, opts);
        assert_eq!(groups_dis, 0);
        assert_eq!(st_dis.probes, 0, "disjoint block must not probe");
        assert_eq!(st_dis.rows, block.len() as u64);
        // The scalar kernel agrees on the disjoint shape.
        let mut acc = FxHashMap::default();
        let mut st_scalar = ProbeStats::default();
        probe_block(&block, &disjoint, &tables, &mut acc, &mut st_scalar).unwrap();
        assert_eq!(st_dis, st_scalar);
    }

    /// Codegen smoke check (x86_64): the branch-free predicate lanes of
    /// [`compact_sel_first`] must actually autovectorize — its disassembly
    /// has to touch SIMD registers. Skips (with a note) when `objdump`
    /// is unavailable rather than failing.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_compaction_codegen_smoke() {
        // Correctness part, always runs: lanes agree with the branchy path.
        let vals: Vec<i32> = (0..10_000).map(|i| (i * 7919) % 101).collect();
        let p = CompiledFactPred::Between {
            col: 0,
            lo: 10,
            hi: 60,
        };
        let mut sel = vec![0u32; vals.len()];
        let w = compact_sel_first(&mut sel, vals.len(), &p, &vals);
        let expect: Vec<u32> = (0..vals.len() as u32)
            .filter(|&i| pred_ok(&p, vals[i as usize]))
            .collect();
        assert_eq!(&sel[..w], &expect[..]);

        // Codegen part: disassemble this test binary and look for xmm/ymm
        // register usage inside the compact_sel_first symbol. Only
        // meaningful in optimized builds — debug codegen never vectorizes.
        if cfg!(debug_assertions) {
            eprintln!("debug build; skipping codegen assertion (run with --release)");
            return;
        }
        let exe = std::env::current_exe().expect("test binary path");
        let out = match std::process::Command::new("objdump")
            .args(["-d", "--demangle"])
            .arg(&exe)
            .output()
        {
            Ok(o) if o.status.success() => o,
            _ => {
                eprintln!("objdump unavailable; skipping codegen assertion");
                return;
            }
        };
        let asm = String::from_utf8_lossy(&out.stdout);
        let mut in_fn = false;
        let mut saw_simd = false;
        let mut saw_fn = false;
        for line in asm.lines() {
            if line.contains(">:") {
                in_fn = line.contains("compact_sel_first");
                saw_fn |= in_fn;
            } else if in_fn && (line.contains("%xmm") || line.contains("%ymm")) {
                saw_simd = true;
                break;
            }
        }
        assert!(saw_fn, "compact_sel_first symbol not found in disassembly");
        assert!(
            saw_simd,
            "compact_sel_first compiled without SIMD registers — predicate lanes did not vectorize"
        );
    }
}
