//! D004 fixture: concurrency primitive outside the audited modules.
//! This file is NOT compiled; `clyde-lint --self-test` must flag it.

use std::sync::Mutex;

pub static SHARED: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn push(v: u64) {
    SHARED.lock().unwrap().push(v);
}
