//! A long-running multi-job server over the engine: submission queue with
//! admission control, per-tenant quotas, and policy-driven slot scheduling
//! in deterministic simulated time.
//!
//! The execution/scheduling split keeps every existing guarantee intact:
//! jobs *execute* sequentially in submission order through the unmodified
//! [`Engine`] (so an admitted job's rows, output files, and counters are
//! bit-for-bit what a solo run produces), while *concurrency* lives entirely
//! in the discrete-event slot simulator ([`scheduler::interleave`]). The
//! published histories, traces, and `scheduler.*` metrics therefore depend
//! only on the submitted workload — never on wall-clock or host thread
//! count — and `shadow_check` can dual-run a whole served workload.
//!
//! Admission is decided synchronously at [`JobServer::submit`] against the
//! current backlog: a bounded queue (reject past `queue_capacity`) and an
//! optional per-tenant pending quota. Rejections carry a typed reason and
//! are reported in the drain's [`ServerRun`] artifact next to the served
//! swimlanes.

use crate::cost::CostParams;
use crate::engine::{publish_history, Engine};
use crate::history;
use crate::job::{JobResult, JobSpec};
use crate::scheduler::{self, SchedPolicy, SimJob};
use clyde_common::obs::{RejectedLane, ServedLane, ServerRun};
use clyde_common::Result;
use std::fmt;

/// Server-level knobs, fixed for the server's lifetime.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    pub policy: SchedPolicy,
    /// Max jobs waiting in the queue at once; submissions past this are
    /// rejected with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Max *pending* jobs any single tenant may hold (0 = no per-tenant
    /// cap); the quota frees up as the queue drains.
    pub tenant_quota: usize,
    /// Capacity-policy weights by tenant name; unlisted tenants weigh 1.0.
    pub weights: Vec<(String, f64)>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            policy: SchedPolicy::Fair,
            queue_capacity: 64,
            tenant_quota: 0,
            weights: Vec::new(),
        }
    }
}

/// Why admission control turned a submission away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity; resubmit after a drain.
    QueueFull { capacity: usize },
    /// The tenant already holds its full pending quota.
    TenantQuota { quota: usize },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::TenantQuota { quota } => {
                write!(f, "tenant quota exceeded (quota {quota})")
            }
        }
    }
}

/// One served job: where it sat on the shared timeline, plus the full
/// (solo-identical) execution result.
pub struct ServedJob {
    pub tenant: String,
    pub name: String,
    /// Submission time on the server clock (seconds).
    pub arrival_s: f64,
    /// First granted slot on the shared cluster.
    pub start_s: f64,
    /// Completion (last stage + overhead) on the shared timeline.
    pub finish_s: f64,
    pub result: JobResult,
}

impl ServedJob {
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

struct Submission {
    tenant: String,
    arrival_s: f64,
    spec: JobSpec,
}

/// The multi-job frontend. Accumulates admitted submissions, then lays them
/// all out on the shared cluster in one [`JobServer::drain`].
///
/// Fault plans are not combined with served scheduling: a spec carrying
/// `faults` still executes under them (results stay solo-identical), but the
/// scheduled swimlanes only show committed attempts.
pub struct JobServer<'e> {
    engine: &'e Engine,
    cfg: ServerConfig,
    /// Monotone server clock: a submission's arrival is clamped to it.
    clock_s: f64,
    pending: Vec<Submission>,
    rejected: Vec<RejectedLane>,
    /// High-water mark of the pending queue since the last drain.
    peak_depth: usize,
}

impl<'e> JobServer<'e> {
    pub fn new(engine: &'e Engine, cfg: ServerConfig) -> JobServer<'e> {
        JobServer {
            engine,
            cfg,
            clock_s: 0.0,
            pending: Vec::new(),
            rejected: Vec::new(),
            peak_depth: 0,
        }
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Jobs currently waiting for the next drain.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Submit a job on behalf of `tenant` at server time `arrival_s`
    /// (clamped to be monotone). Admission is decided immediately against
    /// the current backlog; a rejected spec is dropped and recorded in the
    /// next drain's report.
    pub fn submit(
        &mut self,
        tenant: &str,
        arrival_s: f64,
        spec: JobSpec,
    ) -> std::result::Result<(), RejectReason> {
        self.clock_s = self.clock_s.max(arrival_s);
        let arrival = self.clock_s;
        let reason = if self.pending.len() >= self.cfg.queue_capacity {
            Some(RejectReason::QueueFull {
                capacity: self.cfg.queue_capacity,
            })
        } else if self.cfg.tenant_quota > 0
            && self.pending.iter().filter(|s| s.tenant == tenant).count() >= self.cfg.tenant_quota
        {
            Some(RejectReason::TenantQuota {
                quota: self.cfg.tenant_quota,
            })
        } else {
            None
        };
        if let Some(reason) = reason {
            self.rejected.push(RejectedLane {
                tenant: tenant.to_string(),
                job: spec.name.clone(),
                arrival_s: arrival,
                reason: reason.to_string(),
            });
            return Err(reason);
        }
        self.pending.push(Submission {
            tenant: tenant.to_string(),
            arrival_s: arrival,
            spec,
        });
        self.peak_depth = self.peak_depth.max(self.pending.len());
        Ok(())
    }

    /// Run everything admitted since the last drain: execute each job
    /// (sequentially, in submission order — results are solo-identical),
    /// interleave their tasks on the shared cluster under the configured
    /// policy, publish one scheduled history per job plus the aggregate
    /// `scheduler.*` metrics, and record the [`ServerRun`] swimlane report.
    pub fn drain(&mut self) -> Result<Vec<ServedJob>> {
        let subs = std::mem::take(&mut self.pending);
        let rejected = std::mem::take(&mut self.rejected);
        let peak_depth = std::mem::replace(&mut self.peak_depth, 0);
        let cluster = self.engine.dfs().cluster().clone();
        let params = self.engine.params().clone();
        let cache_before = self.engine.dfs().cache_stats();

        // Dense tenant indices in order of first submission.
        let mut tenant_names: Vec<String> = Vec::new();
        let tenant_idx = |names: &mut Vec<String>, t: &str| -> usize {
            match names.iter().position(|n| n == t) {
                Some(i) => i,
                None => {
                    names.push(t.to_string());
                    names.len() - 1
                }
            }
        };
        let weight_of = |cfg: &ServerConfig, t: &str| -> f64 {
            cfg.weights
                .iter()
                .find(|(name, _)| name == t)
                .map_or(1.0, |(_, w)| *w)
        };

        // Phase 1: execute. The engine is untouched single-job machinery;
        // running in dispatch order keeps DFS I/O scopes and obs recording
        // attributable per job.
        let mut executed = Vec::with_capacity(subs.len());
        let mut sim_jobs = Vec::with_capacity(subs.len());
        for sub in &subs {
            let (result, io) = self.engine.run_job_quiet(&sub.spec)?;
            let sim = sim_job_from(
                &result,
                &params,
                &cluster,
                tenant_idx(&mut tenant_names, &sub.tenant),
                weight_of(&self.cfg, &sub.tenant),
                sub.arrival_s,
                sub.spec.declared_task_memory,
            );
            sim_jobs.push(sim);
            executed.push((result, io));
        }

        // Phase 2: schedule all admitted jobs on the shared cluster.
        let schedules = scheduler::interleave(&sim_jobs, &cluster, self.cfg.policy);

        // Phase 3: publish, in submission order (deterministic).
        let mut served = Vec::with_capacity(subs.len());
        let mut lanes = Vec::with_capacity(subs.len());
        for (((result, io), sub), sched) in executed.into_iter().zip(&subs).zip(&schedules) {
            if self.engine.obs().is_enabled() {
                let hist = history::job_history_scheduled(
                    &result.profile,
                    &result.cost,
                    &params,
                    &cluster,
                    &sub.tenant,
                    sub.arrival_s,
                    sched,
                );
                publish_history(
                    self.engine.obs(),
                    &result.profile,
                    hist,
                    io.as_ref(),
                    result.served_from_cache,
                );
            }
            lanes.push(ServedLane {
                tenant: sub.tenant.clone(),
                job: sub.spec.name.clone(),
                arrival_s: sub.arrival_s,
                start_s: sched.first_slot_s,
                finish_s: sched.finish_s,
            });
            served.push(ServedJob {
                tenant: sub.tenant.clone(),
                name: sub.spec.name.clone(),
                arrival_s: sub.arrival_s,
                start_s: sched.first_slot_s,
                finish_s: sched.finish_s,
                result,
            });
        }

        // Drain-level result-cache deltas: catalog counters accumulated by
        // this drain's lookups/fills, emitted only while the cache is
        // enabled (and, like the recovery counters, only when nonzero) so
        // cache-off runs keep their metric sets byte-identical. Per-job
        // `cache.hits` rides with each scheduled history above.
        if self.engine.dfs().cache_enabled() && self.engine.obs().is_enabled() {
            let delta = self.engine.dfs().cache_stats().delta_since(&cache_before);
            let m = self.engine.obs().metrics();
            if delta.misses > 0 {
                m.counter_add("cache.misses", delta.misses);
            }
            if delta.inserts > 0 {
                m.counter_add("cache.inserts", delta.inserts);
            }
            if delta.evictions > 0 {
                m.counter_add("cache.evictions", delta.evictions);
            }
            if delta.invalidations > 0 {
                m.counter_add("cache.invalidations", delta.invalidations);
            }
            if delta.bytes_served > 0 {
                m.counter_add("cache.bytes_served", delta.bytes_served);
            }
            m.gauge_set("cache.bytes_stored", delta.bytes_stored as f64);
            m.gauge_set("cache.entries", delta.entries as f64);
        }

        let run = ServerRun {
            policy: self.cfg.policy.label().to_string(),
            queue_capacity: self.cfg.queue_capacity,
            lanes,
            rejected,
        };
        self.publish_run(&run, peak_depth, tenant_names.len());
        self.engine.obs().record_server_run(run);
        Ok(served)
    }

    /// Aggregate drain-level metrics. Per-tenant detail lives in the
    /// [`ServerRun`] report; metric names stay literal (lint rule D005).
    fn publish_run(&self, run: &ServerRun, peak_depth: usize, tenants: usize) {
        let obs = self.engine.obs();
        if !obs.is_enabled() {
            return;
        }
        let m = obs.metrics();
        m.counter_add("scheduler.jobs_admitted", run.lanes.len() as u64);
        let queue_full = run
            .rejected
            .iter()
            .filter(|r| r.reason.starts_with("queue full"))
            .count() as u64;
        let quota = run.rejected.len() as u64 - queue_full;
        if queue_full > 0 {
            m.counter_add("scheduler.jobs_rejected_queue_full", queue_full);
        }
        if quota > 0 {
            m.counter_add("scheduler.jobs_rejected_quota", quota);
        }
        m.gauge_set("scheduler.queue_peak_depth", peak_depth as f64);
        m.gauge_set("scheduler.tenant_count", tenants as f64);
        m.gauge_set("scheduler.makespan_s", run.makespan_s());
        for lane in &run.lanes {
            m.histogram_record("scheduler.queue_wait_s", lane.wait_s());
            m.histogram_record("scheduler.job_latency_s", lane.latency_s());
        }
    }
}

/// Reduce a finished job to what the slot simulator needs, pricing every
/// task with the same [`CostParams`] the solo history uses so a served
/// job's lane durations match its solo swimlane exactly.
fn sim_job_from(
    result: &JobResult,
    params: &CostParams,
    cluster: &clyde_dfs::ClusterSpec,
    tenant: usize,
    weight: f64,
    arrival_s: f64,
    declared_task_memory: u64,
) -> SimJob {
    let n = cluster.num_workers().max(1);
    let profile = &result.profile;
    let concurrency = profile.map_concurrency.max(1);
    SimJob {
        tenant,
        weight,
        arrival_s,
        setup_s: result.cost.setup_s,
        map_tasks: profile
            .map_tasks
            .iter()
            .map(|t| {
                (
                    t.node.0 % n,
                    params.map_task_duration(cluster, &t.cost, concurrency),
                )
            })
            .collect(),
        map_cap_per_node: concurrency,
        task_mem: declared_task_memory,
        shuffle_s: result.cost.shuffle_s,
        reduce_tasks: profile
            .reduce_tasks
            .iter()
            .map(|t| (t.node.0 % n, params.reduce_task_duration(cluster, &t.cost)))
            .collect(),
        overhead_s: result.cost.overhead_s,
    }
}
