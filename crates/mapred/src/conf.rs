//! Job configuration — the analog of Hadoop's `JobConf`.
//!
//! The paper's Figure 4 shows query parameters flowing into map tasks through
//! `JobConf` string properties (`job.set("dimtables.directory", ...)`); the
//! Clydesdale and Hive planners here do the same, so query descriptions cross
//! the "framework boundary" exactly as they would on Hadoop.

use clyde_common::{ClydeError, Result};
use std::collections::BTreeMap;

/// A string-keyed configuration map with typed accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobConf {
    values: BTreeMap<String, String>,
}

impl JobConf {
    pub fn new() -> JobConf {
        JobConf::default()
    }

    /// Set a property, returning `self` for chaining.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.values.insert(key.into(), value.into());
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string property.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| ClydeError::Config(format!("missing job property: {key}")))
    }

    pub fn get_u64(&self, key: &str) -> Result<Option<u64>> {
        self.get(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| ClydeError::Config(format!("property {key}={v} is not a u64")))
            })
            .transpose()
    }

    pub fn get_u64_or(&self, key: &str, default: u64) -> Result<u64> {
        Ok(self.get_u64(key)?.unwrap_or(default))
    }

    pub fn get_bool_or(&self, key: &str, default: bool) -> Result<bool> {
        match self.get(key) {
            None => Ok(default),
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(v) => Err(ClydeError::Config(format!(
                "property {key}={v} is not a bool"
            ))),
        }
    }

    pub fn set_u64(&mut self, key: impl Into<String>, value: u64) -> &mut Self {
        self.set(key, value.to_string())
    }

    pub fn set_bool(&mut self, key: impl Into<String>, value: bool) -> &mut Self {
        self.set(key, if value { "true" } else { "false" })
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Well-known configuration keys used across the workspace.
pub mod keys {
    /// Input table base path.
    pub const INPUT_PATH: &str = "mapred.input.path";
    /// Comma-separated list of column names the scan must materialize
    /// (CIF projection pushdown, paper Section 4.2).
    pub const SCAN_COLUMNS: &str = "scan.columns";
    /// Number of row groups packed into one multi-split (MultiCIF).
    pub const GROUPS_PER_SPLIT: &str = "multicif.groups.per.split";
    /// When "true", the input format emits one multi-split per worker node.
    pub const ONE_SPLIT_PER_NODE: &str = "multicif.one.split.per.node";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut c = JobConf::new();
        c.set("a", "1").set("b", "x");
        assert_eq!(c.get("a"), Some("1"));
        assert_eq!(c.get("missing"), None);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn typed_accessors() {
        let mut c = JobConf::new();
        c.set_u64("n", 42).set_bool("f", true).set("bad", "zzz");
        assert_eq!(c.get_u64("n").unwrap(), Some(42));
        assert_eq!(c.get_u64_or("absent", 7).unwrap(), 7);
        assert!(c.get_u64("bad").is_err());
        assert!(c.get_bool_or("f", false).unwrap());
        assert!(!c.get_bool_or("absent", false).unwrap());
        assert!(c.get_bool_or("bad", false).is_err());
    }

    #[test]
    fn require_reports_key() {
        let c = JobConf::new();
        let err = c.require("query.id").unwrap_err().to_string();
        assert!(err.contains("query.id"));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut c = JobConf::new();
        c.set("z", "1").set("a", "2");
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
