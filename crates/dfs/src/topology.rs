//! Cluster topology descriptions.
//!
//! The paper evaluates on two physical clusters (Section 6.2):
//!
//! * **Cluster A** — 9 nodes (1 master + 8 workers); each worker has two
//!   quad-core AMD Opterons (8 cores), 16 GB RAM, and eight 250 GB SATA
//!   disks; 1 Gbit Ethernet.
//! * **Cluster B** — 42 nodes (2 masters + 40 workers); each worker has two
//!   quad-core Intel Xeons (8 cores), 32 GB RAM, and five 500 GB SATA disks;
//!   1 Gbit Ethernet.
//!
//! Both run 6 map slots and 1 reduce slot per node. [`ClusterSpec::cluster_a`]
//! and [`ClusterSpec::cluster_b`] encode these configurations; the cost model
//! in `clyde-mapred` prices jobs against them.

use std::fmt;

/// Identifier of a worker node (dense, `0..cluster.num_workers()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Hardware description of one worker node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Processor cores (the paper's nodes have 8).
    pub cores: u32,
    /// Main memory in bytes.
    pub memory_bytes: u64,
    /// Number of data disks.
    pub disks: u32,
    /// Sequential bandwidth of one disk, bytes/second (paper Section 6.6
    /// measured 70–100 MB/s per disk with `dd`; we adopt the conservative
    /// 70 MB/s the paper uses for its aggregate estimates).
    pub disk_bw: f64,
    /// Relative single-core speed (1.0 = cluster A's Opterons). The paper's
    /// Q2.1 hash build takes 27 s on cluster A but 16 s on cluster B's
    /// newer Xeons — a ~1.6x per-core difference the cost model must carry.
    pub cpu_factor: f64,
}

impl NodeSpec {
    /// Aggregate raw disk bandwidth of the node, bytes/second.
    pub fn raw_disk_bw(&self) -> f64 {
        f64::from(self.disks) * self.disk_bw
    }
}

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// A homogeneous cluster of worker nodes plus framework configuration.
///
/// Master nodes (jobtracker/namenode) are implicit: they do not store data or
/// run tasks, matching the paper's setup where masters were reserved.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    pub name: String,
    /// Per-worker hardware (homogeneous, like the paper's clusters).
    pub node: NodeSpec,
    /// Number of worker nodes (excludes masters).
    pub workers: usize,
    /// Network bandwidth per node, bytes/second (1 Gbit Ethernet ≈ 125 MB/s).
    pub network_bw: f64,
    /// Map slots per node (paper: 6).
    pub map_slots: u32,
    /// Reduce slots per node (paper: 1).
    pub reduce_slots: u32,
}

impl ClusterSpec {
    /// The paper's cluster A: 8 workers, 8 cores / 16 GB / 8×250 GB each.
    pub fn cluster_a() -> ClusterSpec {
        ClusterSpec {
            name: "cluster-A".to_string(),
            node: NodeSpec {
                cores: 8,
                memory_bytes: 16 * GB,
                disks: 8,
                disk_bw: 70.0 * MB as f64,
                cpu_factor: 1.0,
            },
            workers: 8,
            network_bw: 125.0 * MB as f64,
            map_slots: 6,
            reduce_slots: 1,
        }
    }

    /// The paper's cluster B: 40 workers, 8 cores / 32 GB / 5×500 GB each.
    pub fn cluster_b() -> ClusterSpec {
        ClusterSpec {
            name: "cluster-B".to_string(),
            node: NodeSpec {
                cores: 8,
                memory_bytes: 32 * GB,
                disks: 5,
                disk_bw: 70.0 * MB as f64,
                cpu_factor: 1.6,
            },
            workers: 40,
            network_bw: 125.0 * MB as f64,
            map_slots: 6,
            reduce_slots: 1,
        }
    }

    /// A small cluster for tests and examples: `workers` nodes with 4 cores,
    /// 4 GB, 2 disks, 2 map slots.
    pub fn tiny(workers: usize) -> ClusterSpec {
        ClusterSpec {
            name: format!("tiny-{workers}"),
            node: NodeSpec {
                cores: 4,
                memory_bytes: 4 * GB,
                disks: 2,
                disk_bw: 70.0 * MB as f64,
                cpu_factor: 1.0,
            },
            workers,
            network_bw: 125.0 * MB as f64,
            map_slots: 2,
            reduce_slots: 1,
        }
    }

    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// All worker node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.workers).map(NodeId)
    }

    /// Total map slots across the cluster (paper cluster A: 48).
    pub fn total_map_slots(&self) -> u32 {
        self.map_slots * self.workers as u32
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.reduce_slots * self.workers as u32
    }

    /// Aggregate raw disk bandwidth of the whole cluster, bytes/second
    /// (paper: 560 MB/s per node × 8 = 4.5 GB/s on A).
    pub fn aggregate_raw_disk_bw(&self) -> f64 {
        self.node.raw_disk_bw() * self.workers as f64
    }

    /// Effective replication: you cannot have more replicas than workers.
    pub fn clamp_replication(&self, r: u32) -> u32 {
        r.min(self.workers as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_matches_paper() {
        let a = ClusterSpec::cluster_a();
        assert_eq!(a.workers, 8);
        assert_eq!(a.node.cores, 8);
        assert_eq!(a.node.disks, 8);
        assert_eq!(a.total_map_slots(), 48); // paper: "48 map slots across cluster A"
        assert_eq!(a.total_reduce_slots(), 8);
        // Paper: "Conservatively assuming 70MB/s per disk would result in
        // 560MB/s for cluster A's eight disks".
        let per_node = a.node.raw_disk_bw() / (1 << 20) as f64;
        assert!((per_node - 560.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_b_matches_paper() {
        let b = ClusterSpec::cluster_b();
        assert_eq!(b.workers, 40);
        assert_eq!(b.node.memory_bytes, 32 * GB);
        assert_eq!(b.node.disks, 5);
        // Paper: "280MB/s for cluster B's four disks" — the paper says five
        // 500GB disks but quotes 4 data disks' worth of bandwidth (one disk
        // holds the OS). We keep 5 disks in the spec; the cost model's HDFS
        // efficiency factor absorbs the difference.
        assert!(b.node.raw_disk_bw() > 0.0);
    }

    #[test]
    fn cluster_b_has_more_aggregate_bandwidth_than_a() {
        assert!(
            ClusterSpec::cluster_b().aggregate_raw_disk_bw()
                > ClusterSpec::cluster_a().aggregate_raw_disk_bw()
        );
    }

    #[test]
    fn tiny_cluster_node_iteration() {
        let t = ClusterSpec::tiny(3);
        let nodes: Vec<NodeId> = t.nodes().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(t.clamp_replication(3), 3);
        assert_eq!(t.clamp_replication(5), 3);
        assert_eq!(t.clamp_replication(0), 1);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "node4");
    }
}
