//! Micro-benchmark of the probe kernels over a four-query suite (Q1.1,
//! Q2.1, Q3.2, Q4.1): rows/sec, scalar vs vectorized, plus a
//! per-optimization ablation table — all over in-memory column blocks (no
//! DFS, no MapReduce — just the inner loop the map task runs).
//!
//! Usage: `bench_probe [SF] [--json PATH] [--gate PATH]`.
//!
//! * `--json PATH` writes the suite results as a JSON document (see
//!   `BENCH_probe.json` at the repo root for a committed run).
//! * `--gate PATH` reads a committed run and **fails (exit 1) if any
//!   query's measured speedup falls below 0.9× its recorded speedup** —
//!   the CI regression gate.
//!
//! Timing: each measurement first calibrates a repetition count so one
//! timed iteration runs at least [`MIN_ITER_SECS`], then times every
//! variant once per round for [`TIMED_ITERS`] rounds. Raw rows/sec are
//! best-of-rounds; the recorded `speedup` is the **median of same-round
//! scalar/vectorized ratios**, which cancels machine-wide frequency drift
//! out of the number the gate checks.

use clyde_common::obs::WallTimer;
use clyde_common::{FxHashMap, RowBlock, RowBlockBuilder};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::{query_by_id, schema};
use clydesdale::hashtable::DimTables;
use clydesdale::planner::ROWS_PER_BLOCK;
use clydesdale::probe::{
    probe_block, probe_block_vec, GroupAcc, GroupLayout, KernelOpts, ProbePlan, ProbeStats, SelBuf,
};

/// The benchmarked queries: one per SSB flight, covering the kernel's
/// shapes — fact predicates + dense single group (Q1.1), no fact
/// predicates + fused first join (Q2.1), selective two-dim filters
/// (Q3.2), and a four-join probe (Q4.1).
const SUITE: [&str; 4] = ["Q1.1", "Q2.1", "Q3.2", "Q4.1"];

/// A named benchmark variant: label plus a closure running one full pass
/// over the data and returning the pass's [`ProbeStats`].
type Pass<'a> = (&'static str, Box<dyn FnMut() -> ProbeStats + 'a>);

/// Minimum wall time of one timed iteration; repetitions are scaled up
/// until a single iteration takes at least this long.
const MIN_ITER_SECS: f64 = 0.03;
const TIMED_ITERS: usize = 9;
const WARMUP_ITERS: usize = 2;

/// The per-optimization ablation points reported per query: all layers on,
/// each layer individually off, and every layer off.
fn ablation_points() -> Vec<(&'static str, KernelOpts)> {
    let on = KernelOpts::all_on();
    vec![
        ("all-on", on),
        (
            "no-simd-compaction",
            KernelOpts {
                simd_compaction: false,
                ..on
            },
        ),
        (
            "no-prefetch",
            KernelOpts {
                prefetch: false,
                ..on
            },
        ),
        (
            "no-zone-fullcover",
            KernelOpts {
                zone_fullcover: false,
                ..on
            },
        ),
        ("none", KernelOpts::none()),
    ]
}

struct QueryFixture {
    qid: &'static str,
    plan: ProbePlan,
    tables: DimTables,
    blocks: Vec<RowBlock>,
    rows: u64,
}

struct QueryResult {
    qid: &'static str,
    rows: u64,
    scalar_rps: f64,
    vec_rps: f64,
    speedup: f64,
    ablations: Vec<(&'static str, f64)>,
    stats: ProbeStats,
}

fn build_fixture(data: &clyde_ssb::SsbData, qid: &'static str) -> QueryFixture {
    let q = query_by_id(qid).expect("known query");
    let fact_schema = schema::lineorder_schema();
    let cols: Vec<usize> = q
        .fact_columns()
        .iter()
        .map(|c| fact_schema.index_of(c).unwrap())
        .collect();
    let scan_schema = fact_schema.project(&cols);
    let plan = ProbePlan::compile(&q, &scan_schema).expect("plan compiles");
    let tables = DimTables::build_all(&q.joins, |dim| Ok(data.dimension(dim).unwrap().to_vec()))
        .expect("tables build");
    let dtypes: Vec<_> = scan_schema.fields().iter().map(|f| f.dtype).collect();
    let blocks: Vec<RowBlock> = data
        .lineorder
        .chunks(ROWS_PER_BLOCK)
        .map(|chunk| {
            let mut b = RowBlockBuilder::new(&dtypes);
            for r in chunk {
                b.push_row(&r.project(&cols)).unwrap();
            }
            b.finish()
        })
        .collect();
    QueryFixture {
        qid,
        plan,
        tables,
        blocks,
        rows: data.lineorder.len() as u64,
    }
}

/// One variant's timing: per-round seconds for a single pass over the
/// data (round times divided by the calibrated repetition count), plus the
/// [`ProbeStats`] one pass produced.
struct Timed {
    rounds: Vec<f64>,
    stats: ProbeStats,
}

impl Timed {
    fn best_rps(&self, rows: u64) -> f64 {
        rows as f64 / self.rounds.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// Interleaved rounds: every variant is timed once per round, so CPU
/// frequency drift and noisy neighbors hit all variants of a round alike
/// instead of skewing whichever happened to run during a slow stretch.
/// Repetition counts are calibrated per variant so one timed sample runs
/// at least [`MIN_ITER_SECS`]. Returns per-round single-pass times per
/// variant, in input order — ratios between variants should be computed
/// round-by-round (see [`median_ratio`]), where drift mostly cancels.
fn time_interleaved(passes: &mut [Pass<'_>]) -> Vec<Timed> {
    let mut reps = Vec::with_capacity(passes.len());
    let mut stats = Vec::with_capacity(passes.len());
    for (_, pass) in passes.iter_mut() {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(pass());
        }
        let t = WallTimer::start();
        let s = std::hint::black_box(pass());
        let once = t.elapsed_s().max(1e-9);
        reps.push(((MIN_ITER_SECS / once).ceil() as usize).max(1));
        stats.push(s);
    }
    let mut rounds = vec![Vec::with_capacity(TIMED_ITERS); passes.len()];
    for _ in 0..TIMED_ITERS {
        for (v, (_, pass)) in passes.iter_mut().enumerate() {
            let t = WallTimer::start();
            for _ in 0..reps[v] {
                stats[v] = std::hint::black_box(pass());
            }
            rounds[v].push(t.elapsed_s() / reps[v] as f64);
        }
    }
    rounds
        .into_iter()
        .zip(stats)
        .map(|(rounds, stats)| Timed { rounds, stats })
        .collect()
}

/// Median over rounds of `base_time / variant_time` — the speedup of
/// `variant` relative to `base`, with same-round pairing so machine-wide
/// drift cancels out of the ratio.
fn median_ratio(base: &Timed, variant: &Timed) -> f64 {
    let mut ratios: Vec<f64> = base
        .rounds
        .iter()
        .zip(&variant.rounds)
        .map(|(b, v)| b / v)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ratios[ratios.len() / 2]
}

fn bench_query(fx: &QueryFixture) -> QueryResult {
    let QueryFixture {
        qid,
        plan,
        tables,
        blocks,
        rows,
    } = fx;
    let layout = GroupLayout::new(plan, tables).expect("packed key fits");
    let mut passes: Vec<Pass<'_>> = Vec::new();
    passes.push((
        "scalar",
        Box::new(|| {
            let mut acc = FxHashMap::default();
            let mut stats = ProbeStats::default();
            for b in blocks {
                probe_block(b, plan, tables, &mut acc, &mut stats).unwrap();
            }
            stats
        }),
    ));
    for (label, opts) in ablation_points() {
        let layout = &layout;
        passes.push((
            label,
            Box::new(move || {
                let mut acc = GroupAcc::new(layout, &plan.aggregate);
                let mut buf = SelBuf::default();
                let mut stats = ProbeStats::default();
                for b in blocks {
                    probe_block_vec(
                        b, plan, tables, layout, &mut acc, &mut buf, &mut stats, opts,
                    )
                    .unwrap();
                }
                stats
            }),
        ));
    }
    let timed = time_interleaved(&mut passes);
    let scalar = &timed[0];
    let mut vec_rps = 0.0;
    let mut speedup = 0.0;
    let mut vec_stats = ProbeStats::default();
    let mut ablations = Vec::new();
    for ((label, _), t) in passes.iter().zip(&timed).skip(1) {
        assert_eq!(
            t.stats, scalar.stats,
            "{qid} {label}: kernels must count identically (rows/probes/survivors)"
        );
        if *label == "all-on" {
            vec_rps = t.best_rps(*rows);
            speedup = median_ratio(scalar, t);
            vec_stats = t.stats;
        }
        ablations.push((*label, t.best_rps(*rows)));
    }
    QueryResult {
        qid,
        rows: *rows,
        scalar_rps: scalar.best_rps(*rows),
        vec_rps,
        speedup,
        ablations,
        stats: vec_stats,
    }
}

/// Pull `"speedup": <num>` for `qid` out of a committed benchmark JSON.
/// Hand-rolled on purpose (no serde in this workspace): finds the query's
/// key, then the first `"speedup"` after it.
fn recorded_speedup(json: &str, qid: &str) -> Option<f64> {
    let key = format!("\"{qid}\"");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let sp = rest.find("\"speedup\"")?;
    let after = &rest[sp + "\"speedup\"".len()..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sf: f64 = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    let flag_path = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = flag_path("--json");
    let gate_path = flag_path("--gate");

    eprintln!("generating SSB at SF {sf}...");
    let data = SsbGen::new(sf, 46).gen_all();
    eprintln!(
        "probing {} rows in blocks of {ROWS_PER_BLOCK} (best of {TIMED_ITERS}, \
         >= {MIN_ITER_SECS}s per timed iteration)...",
        data.lineorder.len()
    );

    let mut results = Vec::new();
    for qid in SUITE {
        let fx = build_fixture(&data, qid);
        let r = bench_query(&fx);
        println!(
            "{}: scalar {:>12.0} rows/s | vectorized {:>12.0} rows/s | speedup {:.2}x",
            r.qid, r.scalar_rps, r.vec_rps, r.speedup
        );
        for (label, rps) in &r.ablations {
            println!("    {label:<20} {rps:>12.0} rows/s");
        }
        results.push(r);
    }

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"sf\": {sf},\n  \"block_rows\": {ROWS_PER_BLOCK},\n  \"queries\": {{\n"
        ));
        for (i, r) in results.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\n      \"fact_rows\": {},\n      \"scalar_rows_per_s\": {:.0},\n      \
                 \"vectorized_rows_per_s\": {:.0},\n      \"speedup\": {:.2},\n      \
                 \"probes\": {},\n      \"survivors\": {},\n      \"ablations\": {{\n",
                r.qid, r.rows, r.scalar_rps, r.vec_rps, r.speedup, r.stats.probes, r.stats.survivors
            ));
            for (j, (label, rps)) in r.ablations.iter().enumerate() {
                let comma = if j + 1 < r.ablations.len() { "," } else { "" };
                out.push_str(&format!("        \"{label}\": {rps:.0}{comma}\n"));
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            out.push_str(&format!("      }}\n    }}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write json");
        eprintln!("wrote {path}");
    }

    if let Some(path) = gate_path {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("gate file {path}: {e}"));
        let mut failed = false;
        for r in &results {
            let Some(recorded) = recorded_speedup(&committed, r.qid) else {
                eprintln!("gate: {path} has no speedup for {}", r.qid);
                failed = true;
                continue;
            };
            let floor = recorded * 0.9;
            let ok = r.speedup >= floor;
            eprintln!(
                "gate {}: measured {:.2}x vs recorded {recorded:.2}x (floor {floor:.2}x) — {}",
                r.qid,
                r.speedup,
                if ok { "ok" } else { "FAIL" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("bench gate FAILED: probe kernel regressed");
            std::process::exit(1);
        }
        eprintln!("bench gate passed");
    }
}
