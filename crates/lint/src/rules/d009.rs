//! D009 `lockgraph`: the static lock-acquisition graph must be acyclic.
//!
//! The runtime `clyde_common::lockorder` checker aborts on the first
//! *observed* inversion — but only on schedules that actually interleave
//! the two orders. This rule runs the same class-level check over every
//! order the code could exhibit (see [`crate::graph`] for how guard extents
//! and the call graph are over-approximated) and fails the lint on any
//! cycle, whether or not a test schedule ever hits it.

use crate::graph::{analyze_locks, crate_of};
use crate::parse::FileAst;
use crate::{Rule, Violation};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Run the lock-graph rule over one crate's parsed files.
pub(crate) fn scan_crate(files: &[(&str, &FileAst)]) -> Vec<Violation> {
    let graph = analyze_locks(files);
    graph
        .cycles
        .into_iter()
        .map(|(path, anchor)| {
            let via = anchor
                .via_call
                .as_ref()
                .map(|c| format!(" (via call to `{c}`)"))
                .unwrap_or_default();
            Violation {
                file: PathBuf::from(&anchor.file),
                line: anchor.line,
                rule: Rule::LockGraph,
                message: format!(
                    "static lock-order cycle `{}`{via} — two schedules can acquire these \
                     classes in opposite orders and deadlock; pick one global order (or \
                     drop the first guard before taking the second)",
                    path.join(" -> ")
                ),
            }
        })
        .collect()
}

/// Group parsed workspace files by crate and run [`scan_crate`] on each.
pub(crate) fn scan_workspace_groups(files: &[(String, FileAst)]) -> Vec<Violation> {
    let mut by_crate: BTreeMap<String, Vec<(&str, &FileAst)>> = BTreeMap::new();
    for (path, ast) in files {
        by_crate
            .entry(crate_of(path))
            .or_default()
            .push((path.as_str(), ast));
    }
    let mut out = Vec::new();
    for group in by_crate.values() {
        out.extend(scan_crate(group));
    }
    out
}
