//! The evaluation harness: regenerates every table and figure of the
//! paper's Section 6.
//!
//! Workflow (shared by the `fig7`, `fig8`, `fig9_ablation`, `table1_dfsio`
//! and `q21_breakdown` binaries):
//!
//! 1. [`harness::measure`] really executes all 13 SSB queries — through
//!    Clydesdale, through both Hive plans, and (for the ablation) through
//!    each feature-disabled Clydesdale variant — on a laptop-scale dataset
//!    over a measurement cluster with the paper's node shape. Every result
//!    is validated against the reference executor; execution produces
//!    hardware-independent [`JobProfile`]s.
//! 2. [`harness::Extrapolator`] rescales the profiles to SF1000 using SSB's
//!    cardinality functions and prices them on the paper's cluster A or B
//!    with the calibrated cost model, reproducing the *shape* of the paper's
//!    results (who wins, by what factor, which configurations OOM).
//!
//! [`JobProfile`]: clyde_mapred::JobProfile

pub mod cli;
pub mod harness;
pub mod paper;
pub mod profdiff;
pub mod report;
pub mod restore;
pub mod workload;
