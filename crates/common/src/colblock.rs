//! Typed column vectors and row blocks.
//!
//! These are the in-memory currency of the scan path. The paper's
//! block-iteration technique (Section 5.3) amortizes per-record framework
//! overhead by moving an array of rows at a time; [`RowBlock`] is that array,
//! stored column-wise so the probe loop can run over contiguous `i32`/`i64`
//! slices. They live in `clyde-common` because both the MapReduce framework
//! (reader traits) and the storage formats (producers) need them.

use crate::datum::{Datum, DatumType};
use crate::error::{ClydeError, Result};
use crate::row::Row;
use std::sync::Arc;

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new(dtype: DatumType) -> ColumnData {
        match dtype {
            DatumType::I32 => ColumnData::I32(Vec::new()),
            DatumType::I64 => ColumnData::I64(Vec::new()),
            DatumType::F64 => ColumnData::F64(Vec::new()),
            DatumType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dtype: DatumType, cap: usize) -> ColumnData {
        match dtype {
            DatumType::I32 => ColumnData::I32(Vec::with_capacity(cap)),
            DatumType::I64 => ColumnData::I64(Vec::with_capacity(cap)),
            DatumType::F64 => ColumnData::F64(Vec::with_capacity(cap)),
            DatumType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn dtype(&self) -> DatumType {
        match self {
            ColumnData::I32(_) => DatumType::I32,
            ColumnData::I64(_) => DatumType::I64,
            ColumnData::F64(_) => DatumType::F64,
            ColumnData::Str(_) => DatumType::Str,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i` as a [`Datum`] (allocation-free except for the enum).
    pub fn get(&self, i: usize) -> Datum {
        match self {
            ColumnData::I32(v) => Datum::I32(v[i]),
            ColumnData::I64(v) => Datum::I64(v[i]),
            ColumnData::F64(v) => Datum::F64(v[i]),
            ColumnData::Str(v) => Datum::Str(Arc::clone(&v[i])),
        }
    }

    /// Append a datum; errors on type mismatch (NULLs are not supported in
    /// columnar fact data, matching the SSB schema which is NOT NULL).
    pub fn push(&mut self, d: &Datum) -> Result<()> {
        match (self, d) {
            (ColumnData::I32(v), Datum::I32(x)) => v.push(*x),
            (ColumnData::I64(v), Datum::I64(x)) => v.push(*x),
            (ColumnData::I64(v), Datum::I32(x)) => v.push(i64::from(*x)),
            (ColumnData::F64(v), Datum::F64(x)) => v.push(*x),
            (ColumnData::Str(v), Datum::Str(x)) => v.push(Arc::clone(x)),
            (col, d) => {
                return Err(ClydeError::Format(format!(
                    "cannot push {:?} into {} column",
                    d,
                    col.dtype()
                )))
            }
        }
        Ok(())
    }

    /// Typed slice accessors for hot loops. Panic if the type is wrong —
    /// callers have already validated against the schema.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            ColumnData::I32(v) => v,
            other => panic!("expected i32 column, found {}", other.dtype()),
        }
    }

    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColumnData::I64(v) => v,
            other => panic!("expected i64 column, found {}", other.dtype()),
        }
    }

    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColumnData::F64(v) => v,
            other => panic!("expected f64 column, found {}", other.dtype()),
        }
    }

    pub fn as_str(&self) -> &[Arc<str>] {
        match self {
            ColumnData::Str(v) => v,
            other => panic!("expected str column, found {}", other.dtype()),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::Str(v) => v
                .iter()
                .map(|s| s.len() + std::mem::size_of::<Arc<str>>())
                .sum(),
        }
    }
}

/// Per-column block zone maps: inclusive `(min, max)` of each `i32` column,
/// `None` for non-`i32` columns and empty blocks. A slice of a block keeps
/// the parent's zones — wider than the slice's true range, but still valid
/// bounds, which is all zone evaluation needs.
fn compute_zones(columns: &[ColumnData]) -> Vec<Option<(i32, i32)>> {
    columns
        .iter()
        .map(|c| match c {
            ColumnData::I32(v) if !v.is_empty() => {
                let mut lo = v[0];
                let mut hi = v[0];
                for &x in &v[1..] {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                Some((lo, hi))
            }
            _ => None,
        })
        .collect()
}

/// A batch of rows stored column-wise.
///
/// The columns are a *projection*: `RowBlock` carries only the columns the
/// query needs, in the order requested, which is what CIF's column pruning
/// produces. Each `i32` column additionally carries a block zone map (its
/// min/max), which the probe kernel's zone-fullcover stage consults;
/// equality compares data only, since zones are derived bounds that may be
/// conservatively wide.
#[derive(Debug, Clone, Default)]
pub struct RowBlock {
    columns: Vec<ColumnData>,
    len: usize,
    zones: Vec<Option<(i32, i32)>>,
}

impl PartialEq for RowBlock {
    fn eq(&self, other: &RowBlock) -> bool {
        self.len == other.len && self.columns == other.columns
    }
}

impl RowBlock {
    pub fn new(columns: Vec<ColumnData>) -> Result<RowBlock> {
        let len = columns.first().map_or(0, ColumnData::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != len {
                return Err(ClydeError::Format(format!(
                    "column {i} has {} rows, expected {len}",
                    c.len()
                )));
            }
        }
        let zones = compute_zones(&columns);
        Ok(RowBlock {
            columns,
            len,
            zones,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Inclusive `(min, max)` bounds of column `i`, when known. Only `i32`
    /// columns of non-empty blocks carry zones. The bounds are valid but
    /// may be wider than the column's true range (slices inherit their
    /// parent's zones), so callers may only use them to *prove* coverage
    /// or disjointness, never to infer a value is present.
    #[inline]
    pub fn zone(&self, i: usize) -> Option<(i32, i32)> {
        self.zones.get(i).copied().flatten()
    }

    /// Materialize row `i` (the row-at-a-time path; allocates).
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Take a sub-range of rows `[from, to)` as a new block (copies).
    pub fn slice(&self, from: usize, to: usize) -> RowBlock {
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                ColumnData::I32(v) => ColumnData::I32(v[from..to].to_vec()),
                ColumnData::I64(v) => ColumnData::I64(v[from..to].to_vec()),
                ColumnData::F64(v) => ColumnData::F64(v[from..to].to_vec()),
                ColumnData::Str(v) => ColumnData::Str(v[from..to].to_vec()),
            })
            .collect();
        RowBlock {
            columns,
            len: to - from,
            zones: self.zones.clone(),
        }
    }

    pub fn heap_size(&self) -> usize {
        self.columns.iter().map(ColumnData::heap_size).sum()
    }
}

/// Builder that appends rows and produces a [`RowBlock`].
#[derive(Debug)]
pub struct RowBlockBuilder {
    columns: Vec<ColumnData>,
}

impl RowBlockBuilder {
    pub fn new(dtypes: &[DatumType]) -> RowBlockBuilder {
        RowBlockBuilder {
            columns: dtypes.iter().map(|&t| ColumnData::new(t)).collect(),
        }
    }

    pub fn push_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(ClydeError::Format(format!(
                "row arity {} != block arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (c, d) in self.columns.iter_mut().zip(row.iter()) {
            c.push(d)?;
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn finish(self) -> RowBlock {
        let len = self.len();
        let zones = compute_zones(&self.columns);
        RowBlock {
            columns: self.columns,
            len,
            zones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn column_push_and_get() {
        let mut c = ColumnData::new(DatumType::I32);
        c.push(&Datum::I32(1)).unwrap();
        c.push(&Datum::I32(2)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Datum::I32(2));
        assert_eq!(c.as_i32(), &[1, 2]);
        assert!(c.push(&Datum::str("x")).is_err());
    }

    #[test]
    fn i32_widens_into_i64_column() {
        let mut c = ColumnData::new(DatumType::I64);
        c.push(&Datum::I32(7)).unwrap();
        assert_eq!(c.as_i64(), &[7i64]);
    }

    #[test]
    #[should_panic(expected = "expected i32 column")]
    fn typed_accessor_panics_on_mismatch() {
        ColumnData::new(DatumType::Str).as_i32();
    }

    #[test]
    fn block_construction_validates_lengths() {
        let a = ColumnData::I32(vec![1, 2]);
        let b = ColumnData::I64(vec![10]);
        assert!(RowBlock::new(vec![a, b]).is_err());
    }

    #[test]
    fn block_row_materialization() {
        let blk = RowBlock::new(vec![
            ColumnData::I32(vec![1, 2]),
            ColumnData::Str(vec![Arc::from("a"), Arc::from("b")]),
        ])
        .unwrap();
        assert_eq!(blk.len(), 2);
        assert_eq!(blk.row(0), row![1i32, "a"]);
        assert_eq!(blk.row(1), row![2i32, "b"]);
    }

    #[test]
    fn block_slice() {
        let blk = RowBlock::new(vec![ColumnData::I64(vec![1, 2, 3, 4])]).unwrap();
        let s = blk.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).as_i64(), &[2, 3]);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = RowBlockBuilder::new(&[DatumType::I32, DatumType::Str]);
        assert!(b.is_empty());
        b.push_row(&row![5i32, "x"]).unwrap();
        b.push_row(&row![6i32, "y"]).unwrap();
        assert!(b.push_row(&row![1i32]).is_err());
        let blk = b.finish();
        assert_eq!(blk.len(), 2);
        assert_eq!(blk.row(1), row![6i32, "y"]);
    }

    #[test]
    fn zones_track_i32_bounds_and_slices_stay_conservative() {
        let blk = RowBlock::new(vec![
            ColumnData::I32(vec![5, -2, 9, 3]),
            ColumnData::I64(vec![1, 2, 3, 4]),
        ])
        .unwrap();
        assert_eq!(blk.zone(0), Some((-2, 9)));
        assert_eq!(blk.zone(1), None, "only i32 columns carry zones");
        assert_eq!(blk.zone(7), None, "out of range is None");
        // A slice inherits the parent's (wider but valid) bounds.
        let s = blk.slice(2, 4);
        assert_eq!(s.zone(0), Some((-2, 9)));
        // Zones never affect equality.
        let rebuilt = RowBlock::new(vec![
            ColumnData::I32(vec![9, 3]),
            ColumnData::I64(vec![3, 4]),
        ])
        .unwrap();
        assert_eq!(s, rebuilt);
        assert_ne!(s.zone(0), rebuilt.zone(0));
        // Builders compute zones too; empty blocks have none.
        let mut b = RowBlockBuilder::new(&[DatumType::I32]);
        b.push_row(&row![7i32]).unwrap();
        assert_eq!(b.finish().zone(0), Some((7, 7)));
        assert_eq!(RowBlock::default().zone(0), None);
    }

    #[test]
    fn heap_sizes() {
        let blk = RowBlock::new(vec![ColumnData::I32(vec![0; 10])]).unwrap();
        assert_eq!(blk.heap_size(), 40);
    }
}
