//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (panicking holder) just yields the inner
//! guard — matching `parking_lot`, which has no poisoning at all.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
