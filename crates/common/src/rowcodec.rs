//! Compact (non-order-preserving) binary serialization of rows.
//!
//! This is the wire/disk format for everything that is *not* a sort key:
//! map-output values, reduce inputs, dimension-table files on local disk,
//! Hive's intermediate stage outputs, and serialized hash tables shipped
//! through the distributed cache. The sortable format lives in [`keycodec`];
//! this one trades comparability for compactness (varints everywhere).
//!
//! [`keycodec`]: crate::keycodec

use crate::datum::{Datum, DatumType};
use crate::error::{ClydeError, Result};
use crate::row::Row;
use crate::varint;

const TAG_NULL: u8 = 0;
const TAG_I32: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STR: u8 = 4;

/// Append one datum.
pub fn write_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(TAG_NULL),
        Datum::I32(v) => {
            out.push(TAG_I32);
            varint::write_i64(out, i64::from(*v));
        }
        Datum::I64(v) => {
            out.push(TAG_I64);
            varint::write_i64(out, *v);
        }
        Datum::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Datum::Str(s) => {
            out.push(TAG_STR);
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Read one datum.
pub fn read_datum(buf: &[u8], pos: &mut usize) -> Result<Datum> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| ClydeError::Format("rowcodec: empty buffer".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Datum::Null),
        TAG_I32 => {
            let v = varint::read_i64(buf, pos)?;
            let v32 = i32::try_from(v)
                .map_err(|_| ClydeError::Format("rowcodec: i32 out of range".into()))?;
            Ok(Datum::I32(v32))
        }
        TAG_I64 => Ok(Datum::I64(varint::read_i64(buf, pos)?)),
        TAG_F64 => {
            let end = *pos + 8;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| ClydeError::Format("rowcodec: truncated f64".into()))?;
            *pos = end;
            Ok(Datum::F64(f64::from_bits(u64::from_le_bytes(
                bytes.try_into().expect("length checked"),
            ))))
        }
        TAG_STR => {
            let len = varint::read_u64(buf, pos)? as usize;
            let end = *pos + len;
            let bytes = buf
                .get(*pos..end)
                .ok_or_else(|| ClydeError::Format("rowcodec: truncated string".into()))?;
            *pos = end;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| ClydeError::Format("rowcodec: invalid utf-8".into()))?;
            Ok(Datum::str(s))
        }
        other => Err(ClydeError::Format(format!("rowcodec: unknown tag {other}"))),
    }
}

/// Append a row (arity-prefixed).
pub fn write_row(out: &mut Vec<u8>, row: &Row) {
    varint::write_u64(out, row.len() as u64);
    for d in row.iter() {
        write_datum(out, d);
    }
}

/// Read a row written by [`write_row`].
pub fn read_row(buf: &[u8], pos: &mut usize) -> Result<Row> {
    let n = varint::read_u64(buf, pos)? as usize;
    if n > buf.len() - *pos {
        // Cheap sanity bound: a row cannot have more fields than bytes left.
        return Err(ClydeError::Format("rowcodec: implausible row arity".into()));
    }
    let mut row = Row::with_capacity(n);
    for _ in 0..n {
        row.push(read_datum(buf, pos)?);
    }
    Ok(row)
}

/// Serialize a sequence of rows to a single buffer (count-prefixed).
pub fn write_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rows.len() * 16);
    varint::write_u64(&mut out, rows.len() as u64);
    for r in rows {
        write_row(&mut out, r);
    }
    out
}

/// Deserialize a buffer written by [`write_rows`].
pub fn read_rows(buf: &[u8]) -> Result<Vec<Row>> {
    let mut pos = 0;
    let n = varint::read_u64(buf, &mut pos)? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(read_row(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(ClydeError::Format(format!(
            "rowcodec: {} trailing bytes",
            buf.len() - pos
        )));
    }
    Ok(rows)
}

/// Expected datum types of a row, serialized alongside table files.
pub fn write_types(out: &mut Vec<u8>, types: &[DatumType]) {
    varint::write_u64(out, types.len() as u64);
    for t in types {
        out.push(t.tag());
    }
}

/// Inverse of [`write_types`].
pub fn read_types(buf: &[u8], pos: &mut usize) -> Result<Vec<DatumType>> {
    let n = varint::read_u64(buf, pos)? as usize;
    let mut types = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| ClydeError::Format("rowcodec: truncated types".into()))?;
        *pos += 1;
        types.push(
            DatumType::from_tag(tag)
                .ok_or_else(|| ClydeError::Format(format!("rowcodec: bad type tag {tag}")))?,
        );
    }
    Ok(types)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use proptest::prelude::*;

    #[test]
    fn datum_roundtrip() {
        for d in [
            Datum::Null,
            Datum::I32(-5),
            Datum::I64(1 << 40),
            Datum::F64(2.5),
            Datum::str("ASIA"),
            Datum::str(""),
        ] {
            let mut buf = Vec::new();
            write_datum(&mut buf, &d);
            let mut pos = 0;
            let back = read_datum(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            // Exact type preservation (unlike keycodec).
            assert_eq!(format!("{back:?}"), format!("{d:?}"));
        }
    }

    #[test]
    fn rows_roundtrip() {
        let rows = vec![row![1i32, "a"], Row::empty(), row![9i64, 1.25f64]];
        let buf = write_rows(&rows);
        assert_eq!(read_rows(&buf).unwrap(), rows);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = write_rows(&[row![1i32]]);
        buf.push(0xAB);
        assert!(read_rows(&buf).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let buf = write_rows(&[row!["hello world"]]);
        for cut in 1..buf.len() {
            assert!(
                read_rows(&buf[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn types_roundtrip() {
        let types = vec![DatumType::I32, DatumType::Str, DatumType::F64];
        let mut buf = Vec::new();
        write_types(&mut buf, &types);
        let mut pos = 0;
        assert_eq!(read_types(&buf, &mut pos).unwrap(), types);
    }

    fn arb_datum() -> impl Strategy<Value = Datum> {
        prop_oneof![
            Just(Datum::Null),
            any::<i32>().prop_map(Datum::I32),
            any::<i64>().prop_map(Datum::I64),
            any::<f64>().prop_map(Datum::F64),
            "[\\PC]{0,16}".prop_map(Datum::from),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_any_rows(rows in proptest::collection::vec(
            proptest::collection::vec(arb_datum(), 0..6).prop_map(Row::new), 0..20)) {
            let buf = write_rows(&rows);
            let back = read_rows(&buf).unwrap();
            prop_assert_eq!(back.len(), rows.len());
            for (a, b) in back.iter().zip(&rows) {
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }
}
