//! CI fault-matrix: recovery transparency under seeded fault plans.
//!
//! Usage: `fault_matrix [measurement-sf] [--seed <n>] [--plan <name>]`
//! (default SF 0.01, seed 46, all plans).
//!
//! For each named plan, Q2.1 is executed twice on identically loaded fresh
//! clusters — once fault-free, once under the plan — and the serialized
//! results are compared byte for byte. Every fault plan must also show at
//! least one recovery action in the job profile (the faults were really
//! injected, not silently skipped). Exits non-zero on any violation, which
//! is what gates the CI `fault-matrix` job.

use clyde_bench::harness::{run_fault_cell, FaultCell, MeasurementConfig};
use clyde_bench::report::render_table;
use clyde_mapred::fault::NAMES;
use clyde_ssb::query_by_id;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: fault_matrix [measurement-sf] [--seed <n>] [--plan <name>]");
    eprintln!("plans: {}", NAMES.join(", "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The plan-specific recovery action that must be visible in the profile.
fn check_signals(cell: &FaultCell) -> Result<(), String> {
    let p = &cell.profile;
    let require = |ok: bool, what: &str| {
        if ok {
            Ok(())
        } else {
            Err(format!("plan `{}`: expected {what}", cell.plan))
        }
    };
    match cell.plan.as_str() {
        "none" => Ok(()),
        "task-fail" => require(p.failed_attempts >= 1, "at least one retried attempt"),
        "slow-node" => require(
            p.speculative_attempts >= 1,
            "a speculative backup for the straggler",
        ),
        "datanode-death" => require(
            !p.dead_nodes.is_empty() && p.rereplicated_blocks >= 1,
            "a dead node and re-replicated blocks",
        ),
        "corruption" => require(
            cell.corrupt_reads >= 1,
            "at least one detected corrupt read",
        ),
        "combined" => require(cell.recovered_something(), "some recovery action"),
        other => Err(format!("unknown plan `{other}`")),
    }
}

fn main() {
    let mut sf = 0.01;
    let mut seed = 46u64;
    let mut plans: Vec<String> = NAMES.iter().map(|s| s.to_string()).collect();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage("--seed needs an integer"),
            },
            "--plan" => match args.next() {
                Some(p) if NAMES.contains(&p.as_str()) => plans = vec![p],
                Some(p) => usage(&format!("unknown plan `{p}`")),
                None => usage("--plan needs a name"),
            },
            "--help" | "-h" => usage(""),
            other => match other.parse::<f64>() {
                Ok(v) if v > 0.0 => sf = v,
                _ => usage(&format!("unrecognized argument `{other}`")),
            },
        }
    }

    let config = MeasurementConfig {
        sf,
        seed,
        ..MeasurementConfig::default()
    };
    let query = query_by_id("Q2.1").expect("Q2.1 exists");
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for plan in &plans {
        eprintln!("running Q2.1 under plan `{plan}` (sf {sf}, seed {seed})...");
        let cell = run_fault_cell(&config, &query, plan, seed).expect("fault cell run failed");
        if !cell.identical {
            failures.push(format!(
                "plan `{plan}`: results differ from the fault-free run"
            ));
        }
        if let Err(e) = check_signals(&cell) {
            failures.push(e);
        }
        let p = &cell.profile;
        rows.push(vec![
            cell.plan.clone(),
            if cell.identical { "yes" } else { "NO" }.to_string(),
            cell.rows.to_string(),
            p.failed_attempts.to_string(),
            format!("{}/{}", p.speculative_wins, p.speculative_attempts),
            p.dead_nodes.len().to_string(),
            p.rereplicated_blocks.to_string(),
            cell.corrupt_reads.to_string(),
            format!("{:.2}", cell.wasted_s.max(0.0)),
            format!("{:+.2}", cell.overhead_s),
        ]);
    }

    println!("\nFault matrix: Q2.1 at SF {sf}, seed {seed}\n");
    println!(
        "{}",
        render_table(
            &[
                "plan",
                "identical",
                "rows",
                "retries",
                "spec w/l",
                "dead",
                "rerepl",
                "corrupt",
                "wasted s",
                "overhead s",
            ],
            &rows,
        )
    );
    if failures.is_empty() {
        println!(
            "fault matrix: all {} plan(s) recovered transparently",
            plans.len()
        );
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
