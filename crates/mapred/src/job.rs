//! Job descriptions, results, and execution profiles.

use crate::conf::JobConf;
use crate::cost::{makespan, shuffle_time, CostParams, JobCost, TaskCost};
use crate::fault::FaultPlan;
use crate::input::InputFormat;
use crate::runner::MapRunner;
use crate::shuffle::Reducer;
use clyde_common::obs::Phase;
use clyde_common::{ClydeError, Result, Row};
use clyde_dfs::{ClusterSpec, NodeId};
use std::sync::Arc;

/// Where a job's output goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSpec {
    /// Collected in memory and returned in [`JobResult::rows`].
    Memory,
    /// Written to DFS part files under this directory (map-only jobs write
    /// `part-m-*` per map task; reduce jobs write `part-r-*` per reducer),
    /// in the row-binary format readable by `formats::RowBinInputFormat`.
    DfsDir(String),
}

/// Everything needed to run one MapReduce job.
pub struct JobSpec {
    pub name: String,
    pub conf: JobConf,
    pub input: Arc<dyn InputFormat>,
    pub map_runner: Arc<dyn MapRunner>,
    pub combiner: Option<Arc<dyn Reducer>>,
    pub reducer: Option<Arc<dyn Reducer>>,
    /// Number of reduce partitions; ignored if `reducer` is `None`.
    pub num_reducers: usize,
    pub output: OutputSpec,
    /// Memory the job declares per map task for the capacity scheduler;
    /// 0 means unset (all slots usable). Clydesdale marks its tasks large so
    /// only one runs per node (paper Section 5.2).
    pub declared_task_memory: u64,
    /// Threads each map task may use. `None` = 1 (Hadoop default).
    pub task_threads: Option<u32>,
    /// Override for the number of *host* OS threads a multi-threaded runner
    /// actually spawns. Purely an execution knob: the cost model keeps
    /// pricing with `task_threads`, so results, simulated times, and traces
    /// must be byte-identical for any value (the thread-count-invariance
    /// tests and `shadow_check` enforce this). `None` = same as
    /// `task_threads`.
    pub host_threads: Option<u32>,
    /// Whether per-node state survives across the job's tasks (JVM reuse).
    pub reuse_jvm: bool,
    /// Maximum execution attempts per map task (Hadoop defaults to 4).
    /// Out-of-memory failures are never retried.
    pub max_task_attempts: u32,
    /// Seeded fault plan to run the job under; `None` is the clean path.
    pub faults: Option<Arc<FaultPlan>>,
    /// Code-identity token for result reuse (`fingerprint` module): a
    /// versioned string naming the map/reduce functions and every planner
    /// knob baked into them. Empty (the default) means the job is not
    /// reusable and bypasses the result cache entirely.
    pub code_token: String,
    /// Upstream-stage fingerprint for chained (multi-stage) plans. When set,
    /// the job's own fingerprint derives from this value *instead of* its
    /// resolved splits — required because intermediate inputs live in
    /// per-run tmp directories whose paths never repeat. Coherence rides the
    /// chain: if the base stage's inputs change, its fingerprint changes,
    /// and every downstream fingerprint changes with it.
    pub lineage: Option<u64>,
}

impl JobSpec {
    /// A minimal spec with the common defaults.
    pub fn new(
        name: impl Into<String>,
        input: Arc<dyn InputFormat>,
        map_runner: Arc<dyn MapRunner>,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            conf: JobConf::new(),
            input,
            map_runner,
            combiner: None,
            reducer: None,
            num_reducers: 0,
            output: OutputSpec::Memory,
            declared_task_memory: 0,
            task_threads: None,
            host_threads: None,
            reuse_jvm: true,
            max_task_attempts: 4,
            faults: None,
            code_token: String::new(),
            lineage: None,
        }
    }
}

/// Execution record of one task.
#[derive(Debug, Clone, Copy)]
pub struct TaskProfile {
    pub node: NodeId,
    pub cost: TaskCost,
    /// Wall-clock nanoseconds the in-process engine spent executing the
    /// task. Observability-only: never feeds simulated time, and is zero for
    /// extrapolated profiles.
    pub wall_ns: u64,
    /// Whether the committed attempt was a speculative backup that won the
    /// commit race against the original.
    pub speculative: bool,
}

/// A task attempt that executed but lost the commit race to its twin (the
/// speculative-execution analogue of Hadoop's `KILLED` attempts). Its work
/// is wasted by definition, and the cost model prices it as real slot
/// occupancy so fault runs show honest degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KilledAttempt {
    /// Map task index the attempt belonged to.
    pub task: usize,
    /// Node the killed attempt ran on.
    pub node: NodeId,
    /// Simulated seconds the attempt occupied its slot before being killed.
    pub busy_s: f64,
    /// Counters the attempt accumulated (all of it wasted work).
    pub cost: TaskCost,
}

/// Hardware-independent record of one job's execution, priceable against any
/// cluster spec and scalable to other scale factors.
#[derive(Debug, Clone, Default)]
pub struct JobProfile {
    pub name: String,
    pub map_tasks: Vec<TaskProfile>,
    pub reduce_tasks: Vec<TaskProfile>,
    /// Concurrent map tasks per node the scheduler admitted.
    pub map_concurrency: u32,
    /// Bytes crossing the network in the shuffle (post-combiner).
    pub shuffle_bytes: u64,
    /// Rows the job client processed before submission (Hive's master-side
    /// hash-table builds for mapjoin).
    pub client_build_rows: u64,
    /// Bytes the client published through the distributed cache.
    pub client_publish_bytes: u64,
    /// Peak per-slot-duplicated memory any task charged (bytes).
    pub memory_per_slot: u64,
    /// Peak node-shared memory any task charged (bytes).
    pub memory_shared: u64,
    /// Scale-invariant portion of per-slot memory: range-bounded structures
    /// (small-range direct-index arrays) that do not grow with dimension
    /// cardinality, so extrapolation carries them through unscaled.
    pub memory_per_slot_fixed: u64,
    /// Scale-invariant portion of node-shared memory.
    pub memory_shared_fixed: u64,
    /// Map-task attempts that failed and were retried (fault tolerance).
    pub failed_attempts: u32,
    /// Fraction of splits the scheduler placed on a preferred host.
    pub split_locality: f64,
    /// Wall-clock nanoseconds per execution phase, summed across tasks
    /// (reported by instrumented runners; observability-only).
    pub wall_phases: Vec<(Phase, u64)>,
    /// Backup attempts launched by speculative execution.
    pub speculative_attempts: u32,
    /// Backup attempts that won the commit race against the original.
    pub speculative_wins: u32,
    /// Attempts that executed but lost the commit race (wasted work).
    pub killed_attempts: Vec<KilledAttempt>,
    /// Nodes blacklisted after repeated attempt failures.
    pub blacklisted_nodes: Vec<NodeId>,
    /// Nodes the heartbeat detector declared dead mid-job.
    pub dead_nodes: Vec<NodeId>,
    /// Block replicas re-created by namenode-driven re-replication.
    pub rereplicated_blocks: u64,
    /// Per-node duration multipliers from the fault plan's slow nodes
    /// (empty = all 1.0). Indexed by worker node id.
    pub node_slowdown: Vec<f64>,
}

impl JobProfile {
    /// Sum of all map-task counters.
    pub fn total_map_cost(&self) -> TaskCost {
        self.map_tasks
            .iter()
            .fold(TaskCost::new(), |acc, t| acc.merge(&t.cost))
    }

    /// Sum of all reduce-task counters.
    pub fn total_reduce_cost(&self) -> TaskCost {
        self.reduce_tasks
            .iter()
            .fold(TaskCost::new(), |acc, t| acc.merge(&t.cost))
    }

    /// Price this profile on a cluster. Errors with `OutOfMemory` when the
    /// per-slot memory duplication exceeds node RAM — the paper's cluster-A
    /// mapjoin failure mode (Section 6.4).
    pub fn price(&self, params: &CostParams, cluster: &ClusterSpec) -> Result<JobCost> {
        let concurrency = self.map_concurrency.max(1);
        let raw = (self.memory_per_slot + self.memory_per_slot_fixed)
            .saturating_mul(u64::from(concurrency))
            + self.memory_shared
            + self.memory_shared_fixed;
        // Java-era in-memory expansion (see CostParams::memory_expansion).
        let required = (raw as f64 * params.memory_expansion) as u64;
        if required > cluster.node.memory_bytes {
            return Err(ClydeError::OutOfMemory {
                required,
                available: cluster.node.memory_bytes,
            });
        }

        // Injected stragglers run every task slower; priced makespan must
        // reflect that or fault runs would look free.
        let slowdown =
            |node: usize| -> f64 { self.node_slowdown.get(node).copied().unwrap_or(1.0) };

        let mut map_durations: Vec<(NodeId, f64)> = self
            .map_tasks
            .iter()
            .map(|t| {
                let node = t.node.0 % cluster.num_workers();
                (
                    NodeId(node),
                    params.map_task_duration(cluster, &t.cost, concurrency) * slowdown(node),
                )
            })
            .collect();
        // Killed attempts occupied real slots until the commit race was
        // decided; price that occupancy as wasted map work.
        map_durations.extend(self.killed_attempts.iter().map(|k| {
            let node = k.node.0 % cluster.num_workers();
            (NodeId(node), k.busy_s)
        }));
        let map_s = makespan(&map_durations, cluster.num_workers(), concurrency);

        let reduce_durations: Vec<(NodeId, f64)> = self
            .reduce_tasks
            .iter()
            .map(|t| {
                let node = t.node.0 % cluster.num_workers();
                (
                    NodeId(node),
                    params.reduce_task_duration(cluster, &t.cost) * slowdown(node),
                )
            })
            .collect();
        let reduce_s = makespan(
            &reduce_durations,
            cluster.num_workers(),
            cluster.reduce_slots,
        );

        let setup_s = self.client_build_rows as f64 / params.build_rows_per_s
            + 2.0 * self.client_publish_bytes as f64 / cluster.network_bw;

        Ok(JobCost {
            setup_s,
            map_s,
            shuffle_s: shuffle_time(params, cluster, self.shuffle_bytes),
            reduce_s,
            overhead_s: params.job_overhead_s,
        })
    }

    /// Rescale this profile to a different data scale and cluster: totals are
    /// scaled (`fact_factor` for fact-proportional counters, `dim_factor` for
    /// dimension-proportional ones), then redistributed over a task list
    /// sized for the target.
    pub fn extrapolate(&self, opts: &Extrapolation) -> JobProfile {
        let total_map = self
            .total_map_cost()
            .scaled(opts.fact_factor, opts.dim_factor);
        let n_map = match opts.map_tasks {
            MapTaskScaling::OnePerNode => opts.cluster.num_workers() as u64,
            MapTaskScaling::BySplitBytes { split_bytes } => {
                let bytes = total_map.local_bytes + total_map.remote_bytes;
                (bytes / split_bytes.max(1)).max(1)
            }
            MapTaskScaling::Fixed(n) => n.max(1),
        };
        let per_map = total_map.split(n_map);
        let map_tasks = (0..n_map)
            .map(|i| TaskProfile {
                node: NodeId((i as usize) % opts.cluster.num_workers()),
                cost: per_map,
                wall_ns: 0,
                speculative: false,
            })
            .collect();

        let total_reduce = self
            .total_reduce_cost()
            .scaled(opts.fact_factor, opts.dim_factor);
        let n_reduce = if self.reduce_tasks.is_empty() {
            0
        } else {
            (opts.cluster.total_reduce_slots() as u64).max(1)
        };
        let mut per_reduce = total_reduce.split(n_reduce.max(1));
        // Each scaled reduce task merges one run per map task.
        per_reduce.merge_runs = if n_reduce > 0 { n_map } else { 0 };
        let reduce_tasks = (0..n_reduce)
            .map(|i| TaskProfile {
                node: NodeId((i as usize) % opts.cluster.num_workers()),
                cost: per_reduce,
                wall_ns: 0,
                speculative: false,
            })
            .collect();

        let sf = |v: u64, f: f64| ((v as f64) * f).round() as u64;
        JobProfile {
            name: self.name.clone(),
            map_tasks,
            reduce_tasks,
            map_concurrency: opts.map_concurrency,
            shuffle_bytes: sf(self.shuffle_bytes, opts.fact_factor),
            client_build_rows: sf(self.client_build_rows, opts.dim_factor),
            client_publish_bytes: sf(self.client_publish_bytes, opts.dim_factor),
            memory_per_slot: sf(self.memory_per_slot, opts.dim_factor),
            memory_shared: sf(self.memory_shared, opts.dim_factor),
            // Range-bounded memory is the same number of bytes at every
            // scale factor — that is the point of tracking it separately.
            memory_per_slot_fixed: self.memory_per_slot_fixed,
            memory_shared_fixed: self.memory_shared_fixed,
            failed_attempts: 0,
            split_locality: self.split_locality,
            // Wall-clock is a property of the measured run, not the
            // extrapolated one — and so is everything the fault injector did.
            wall_phases: Vec::new(),
            speculative_attempts: 0,
            speculative_wins: 0,
            killed_attempts: Vec::new(),
            blacklisted_nodes: Vec::new(),
            dead_nodes: Vec::new(),
            rereplicated_blocks: 0,
            node_slowdown: Vec::new(),
        }
    }
}

/// How many map tasks the extrapolated job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapTaskScaling {
    /// Clydesdale: exactly one (multi-threaded) map task per worker node.
    OnePerNode,
    /// Hadoop default: one map task per `split_bytes` of input.
    BySplitBytes { split_bytes: u64 },
    /// Exactly `n` tasks.
    Fixed(u64),
}

/// Parameters for [`JobProfile::extrapolate`].
#[derive(Debug, Clone)]
pub struct Extrapolation {
    /// Ratio of fact-table cardinality (target SF / measured SF).
    pub fact_factor: f64,
    /// Ratio of (query-relevant) dimension cardinality.
    pub dim_factor: f64,
    pub cluster: ClusterSpec,
    pub map_tasks: MapTaskScaling,
    pub map_concurrency: u32,
}

/// The outcome of a real job execution.
#[derive(Debug)]
pub struct JobResult {
    /// Output rows, when the job's output spec was [`OutputSpec::Memory`].
    pub rows: Vec<Row>,
    /// Output files, when the output spec was [`OutputSpec::DfsDir`].
    pub output_files: Vec<String>,
    /// Hardware-independent execution profile.
    pub profile: JobProfile,
    /// The profile priced on the engine's own cluster spec.
    pub cost: JobCost,
    /// Fraction of scanned bytes read from local replicas.
    pub locality: f64,
    /// Whether this result was materialized from the DFS result cache
    /// instead of executing any tasks.
    pub served_from_cache: bool,
    /// The job's canonical fingerprint, when it was cacheable (token set
    /// and cache enabled). Multi-stage planners chain this into the next
    /// stage's [`JobSpec::lineage`].
    pub fingerprint: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(map: Vec<TaskCost>, concurrency: u32) -> JobProfile {
        JobProfile {
            name: "t".into(),
            map_tasks: map
                .into_iter()
                .enumerate()
                .map(|(i, cost)| TaskProfile {
                    node: NodeId(i % 2),
                    cost,
                    wall_ns: 0,
                    speculative: false,
                })
                .collect(),
            map_concurrency: concurrency,
            ..JobProfile::default()
        }
    }

    #[test]
    fn pricing_detects_oom() {
        let cluster = ClusterSpec::cluster_a(); // 16 GB nodes
        let mut p = profile_with(vec![TaskCost::new()], 6);
        // 3 GB × 6 slots = 18 GB: over cluster A's 16 GB, under cluster
        // B's 32 GB — the paper's exact contrast.
        p.memory_per_slot = 3 << 30;
        let err = p.price(&CostParams::paper(), &cluster).unwrap_err();
        assert!(err.is_oom());
        // Cluster B (32 GB) fits — the paper's exact contrast.
        assert!(p
            .price(&CostParams::paper(), &ClusterSpec::cluster_b())
            .is_ok());
    }

    #[test]
    fn pricing_charges_slow_nodes_and_killed_attempts() {
        let cluster = ClusterSpec::cluster_a();
        let mut cost = TaskCost::new();
        cost.local_bytes = 1 << 30;
        let mut p = profile_with(vec![cost; 2], 1);
        let params = CostParams::paper();
        let clean = p.price(&params, &cluster).unwrap();

        // A 3× slow node stretches the map makespan.
        p.node_slowdown = vec![1.0, 3.0];
        let slowed = p.price(&params, &cluster).unwrap();
        assert!(slowed.map_s > clean.map_s);

        // A killed backup attempt occupies a slot and costs real seconds.
        p.node_slowdown = Vec::new();
        p.killed_attempts = vec![KilledAttempt {
            task: 0,
            node: NodeId(0),
            busy_s: clean.map_s * 2.0,
            cost,
        }];
        let wasted = p.price(&params, &cluster).unwrap();
        assert!(wasted.map_s > clean.map_s);
    }

    #[test]
    fn extrapolation_rebuilds_task_list() {
        let mut cost = TaskCost::new();
        cost.local_bytes = 1000;
        cost.probe_rows = 500;
        cost.build_rows = 100;
        let p = profile_with(vec![cost; 4], 1);
        let e = p.extrapolate(&Extrapolation {
            fact_factor: 10.0,
            dim_factor: 2.0,
            cluster: ClusterSpec::cluster_a(),
            map_tasks: MapTaskScaling::OnePerNode,
            map_concurrency: 1,
        });
        assert_eq!(e.map_tasks.len(), 8);
        let total = e.total_map_cost();
        assert_eq!(total.local_bytes, 40_000);
        assert_eq!(total.probe_rows, 20_000);
        assert_eq!(total.build_rows, 800);
    }

    #[test]
    fn extrapolation_by_split_bytes() {
        let mut cost = TaskCost::new();
        cost.local_bytes = 1 << 20;
        let p = profile_with(vec![cost], 6);
        let e = p.extrapolate(&Extrapolation {
            fact_factor: 100.0,
            dim_factor: 1.0,
            cluster: ClusterSpec::cluster_a(),
            map_tasks: MapTaskScaling::BySplitBytes {
                split_bytes: 4 << 20,
            },
            map_concurrency: 6,
        });
        assert_eq!(e.map_tasks.len(), 25); // 100 MB / 4 MB
    }

    #[test]
    fn more_nodes_price_faster() {
        let mut cost = TaskCost::new();
        cost.local_bytes = 10 << 30;
        cost.threads = 6;
        let p = profile_with(vec![cost; 8], 1);
        let params = CostParams::paper();
        let on_a = p.price(&params, &ClusterSpec::cluster_a()).unwrap();
        let e = p.extrapolate(&Extrapolation {
            fact_factor: 1.0,
            dim_factor: 1.0,
            cluster: ClusterSpec::cluster_b(),
            map_tasks: MapTaskScaling::OnePerNode,
            map_concurrency: 1,
        });
        let on_b = e.price(&params, &ClusterSpec::cluster_b()).unwrap();
        assert!(on_b.total_s() < on_a.total_s());
    }
}
