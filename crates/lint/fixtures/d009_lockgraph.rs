//! D009 fixture: two functions acquire the same two lock classes in
//! opposite orders — a deadlock the runtime checker only sees when a
//! schedule interleaves them, but the static graph sees always. The
//! self-test scans this file *as* `crates/mapred/src/task.rs` (D004-audited,
//! so the `Mutex` declarations themselves are in bounds). NOT compiled.

use std::sync::Mutex;

pub struct Queues {
    intake: Mutex<Vec<u64>>,
    commit: Mutex<Vec<u64>>,
}

impl Queues {
    /// Acquires `intake` then `commit`.
    pub fn forward(&self) {
        let from = self.intake.lock().unwrap();
        let mut to = self.commit.lock().unwrap();
        to.extend(from.iter().copied());
    }

    /// Acquires `commit` then `intake` — the inversion.
    pub fn reclaim(&self) {
        let from = self.commit.lock().unwrap();
        let mut to = self.intake.lock().unwrap();
        to.extend(from.iter().copied());
    }
}
