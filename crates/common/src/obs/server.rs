//! Job-server run reports: per-tenant swimlanes over the shared simulated
//! cluster timeline, plus the admission-control roll-up.
//!
//! A [`ServerRun`] is the server-level analog of a [`JobHistory`]: one record
//! per `drain`, listing where every admitted job sat on the shared timeline
//! (arrival → first slot → finish) and every rejected submission with its
//! reason. Everything is simulated time, so renders and JSON exports are
//! byte-stable across reruns and host thread counts.
//!
//! [`JobHistory`]: super::history::JobHistory

use super::json::escape;

/// One served job's position on the server timeline.
#[derive(Debug, Clone)]
pub struct ServedLane {
    pub tenant: String,
    pub job: String,
    /// Submission time (seconds on the server clock).
    pub arrival_s: f64,
    /// When the scheduler granted the job its first slot.
    pub start_s: f64,
    /// When the job's last stage (including overhead) completed.
    pub finish_s: f64,
}

impl ServedLane {
    /// Queue wait: submission to first granted slot.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }

    /// End-to-end job latency as the tenant saw it.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

/// A submission admission control turned away, with its reason.
#[derive(Debug, Clone)]
pub struct RejectedLane {
    pub tenant: String,
    pub job: String,
    pub arrival_s: f64,
    pub reason: String,
}

/// The full record of one job-server drain.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// Scheduling policy label ("fifo" | "fair" | "capacity").
    pub policy: String,
    pub queue_capacity: usize,
    pub lanes: Vec<ServedLane>,
    pub rejected: Vec<RejectedLane>,
}

impl ServerRun {
    /// Last finish over all served jobs (0 when nothing ran).
    pub fn makespan_s(&self) -> f64 {
        self.lanes.iter().map(|l| l.finish_s).fold(0.0, f64::max)
    }

    /// Sorted unique tenant names over served and rejected submissions.
    pub fn tenants(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .lanes
            .iter()
            .map(|l| l.tenant.as_str())
            .chain(self.rejected.iter().map(|r| r.tenant.as_str()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Served lanes of one tenant, in schedule order.
    pub fn tenant_lanes(&self, tenant: &str) -> Vec<&ServedLane> {
        self.lanes.iter().filter(|l| l.tenant == tenant).collect()
    }

    /// ASCII swimlane report: one row per job, grouped by tenant, with a bar
    /// over the run's makespan (`.` queued, `#` running).
    pub fn render(&self) -> String {
        const BAR: usize = 48;
        let span = self.makespan_s().max(1e-9);
        let col = |t: f64| ((t / span) * BAR as f64).round().min(BAR as f64) as usize;
        let mut out = format!(
            "server run: policy {}, queue capacity {}, {} served / {} rejected, makespan {:.1}s\n",
            self.policy,
            self.queue_capacity,
            self.lanes.len(),
            self.rejected.len(),
            self.makespan_s()
        );
        for tenant in self.tenants() {
            out.push_str(&format!("  tenant {tenant}:\n"));
            for l in self.tenant_lanes(tenant) {
                let (a, s, f) = (col(l.arrival_s), col(l.start_s), col(l.finish_s));
                let mut bar = vec![b' '; BAR];
                for c in bar.iter_mut().take(s).skip(a) {
                    *c = b'.';
                }
                for c in bar.iter_mut().take(f).skip(s) {
                    *c = b'#';
                }
                out.push_str(&format!(
                    "    {:<14} arr {:>7.1}s wait {:>7.1}s latency {:>7.1}s |{}|\n",
                    l.job,
                    l.arrival_s,
                    l.wait_s(),
                    l.latency_s(),
                    String::from_utf8(bar).expect("ascii bar")
                ));
            }
            for r in self.rejected.iter().filter(|r| r.tenant == tenant) {
                out.push_str(&format!(
                    "    {:<14} arr {:>7.1}s REJECTED: {}\n",
                    r.job, r.arrival_s, r.reason
                ));
            }
        }
        out
    }

    /// Hand-rolled JSON export (same dialect as the other obs artifacts).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"policy\":\"{}\",\"queue_capacity\":{},\"makespan_s\":{:.6},\"jobs\":[",
            escape(&self.policy),
            self.queue_capacity,
            self.makespan_s()
        );
        for (i, l) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"job\":\"{}\",\"arrival_s\":{:.6},\"start_s\":{:.6},\"finish_s\":{:.6},\"wait_s\":{:.6},\"latency_s\":{:.6}}}",
                escape(&l.tenant),
                escape(&l.job),
                l.arrival_s,
                l.start_s,
                l.finish_s,
                l.wait_s(),
                l.latency_s()
            ));
        }
        out.push_str("],\"rejected\":[");
        for (i, r) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"job\":\"{}\",\"arrival_s\":{:.6},\"reason\":\"{}\"}}",
                escape(&r.tenant),
                escape(&r.job),
                r.arrival_s,
                escape(&r.reason)
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;

    fn run() -> ServerRun {
        ServerRun {
            policy: "fair".into(),
            queue_capacity: 4,
            lanes: vec![
                ServedLane {
                    tenant: "etl".into(),
                    job: "Q2.1".into(),
                    arrival_s: 0.0,
                    start_s: 1.0,
                    finish_s: 41.0,
                },
                ServedLane {
                    tenant: "adhoc".into(),
                    job: "Q1.1".into(),
                    arrival_s: 5.0,
                    start_s: 20.0,
                    finish_s: 50.0,
                },
            ],
            rejected: vec![RejectedLane {
                tenant: "etl".into(),
                job: "Q3.1".into(),
                arrival_s: 2.0,
                reason: "queue full (capacity 4)".into(),
            }],
        }
    }

    #[test]
    fn swimlane_math_and_render() {
        let r = run();
        assert_eq!(r.makespan_s(), 50.0);
        assert_eq!(r.tenants(), vec!["adhoc", "etl"]);
        assert_eq!(r.tenant_lanes("etl").len(), 1);
        assert!((r.lanes[1].wait_s() - 15.0).abs() < 1e-12);
        assert!((r.lanes[1].latency_s() - 45.0).abs() < 1e-12);
        let text = r.render();
        assert!(text.contains("tenant adhoc"));
        assert!(text.contains("REJECTED: queue full (capacity 4)"));
        assert!(text.contains('#'));
        assert_eq!(text, r.render(), "render is deterministic");
    }

    #[test]
    fn json_roundtrips_through_the_obs_parser() {
        let doc = json::parse(&run().to_json()).expect("valid JSON");
        assert_eq!(doc.get("policy").unwrap().as_str().unwrap(), "fair");
        let jobs = doc.get("jobs").unwrap().as_arr().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].get("wait_s").unwrap().as_num().unwrap(), 15.0);
        let rej = doc.get("rejected").unwrap().as_arr().unwrap();
        assert_eq!(rej.len(), 1);
    }
}
