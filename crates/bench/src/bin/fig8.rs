//! Figure 8 — Clydesdale vs Hive on cluster B (40 workers), SF1000.
//!
//! Usage: `fig8 [measurement-SF] [--trace <out.json>]` (default SF 0.02).
//! Same methodology as `fig7`, priced on cluster B. The paper's
//! observations to reproduce: the speedup shrinks (5.2x–21.4x, avg 11.1x)
//! because per-node work is smaller while hash-table builds and scheduling
//! overheads stay constant, and the mapjoin plans complete (32 GB nodes).

use clyde_bench::harness::{
    fault_impact, measure_with_obs, Extrapolator, MeasureWhat, MeasurementConfig,
};
use clyde_bench::paper;
use clyde_bench::report::{render_fault_impact, render_table, secs, speedup};
use clyde_dfs::ClusterSpec;
use clyde_hive::JoinStrategy;
use std::sync::Arc;

fn main() {
    let args = clyde_bench::cli::parse("fig8", 0.02);
    let sf = args.sf;
    let obs = args.obs();
    let config = MeasurementConfig {
        sf,
        ..MeasurementConfig::default()
    };
    eprintln!("measuring all 13 SSB queries at SF {sf}, validating results...");
    let m = measure_with_obs(
        &config,
        MeasureWhat {
            hive: true,
            ablations: false,
        },
        Arc::clone(&obs),
    )
    .expect("measurement failed");
    args.write_trace(&obs);
    let ex = Extrapolator::new(ClusterSpec::cluster_b(), 1000.0, &m);

    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut ooms = Vec::new();
    for qm in &m.queries {
        let clyde = ex.clyde_time(qm).expect("clydesdale never OOMs");
        let rp = ex
            .hive_time(&m, qm, JoinStrategy::Repartition)
            .expect("repartition never OOMs");
        speedups.push(rp / clyde);
        let (mj_cell, mj_speedup) = match ex.hive_time(&m, qm, JoinStrategy::MapJoin) {
            Ok(t) => {
                speedups.push(t / clyde);
                (secs(t), speedup(t / clyde))
            }
            Err(_) => {
                ooms.push(qm.query.id.clone());
                ("OOM-FAILED".to_string(), "-".to_string())
            }
        };
        rows.push(vec![
            qm.query.id.clone(),
            secs(clyde),
            secs(rp),
            speedup(rp / clyde),
            mj_cell,
            mj_speedup,
        ]);
    }

    println!("\nFigure 8: SSB at SF1000 on cluster B (40 workers x 8 cores / 32 GB / 5 disks)\n");
    println!(
        "{}",
        render_table(
            &[
                "query",
                "Clydesdale",
                "Hive-repartition",
                "speedup",
                "Hive-mapjoin",
                "speedup",
            ],
            &rows,
        )
    );
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("speedup over Hive: min {min:.1}x  max {max:.1}x  avg {avg:.1}x");
    println!(
        "paper reports:     min {:.1}x  max {:.1}x  avg {:.1}x",
        paper::cluster_b::SPEEDUP_MIN,
        paper::cluster_b::SPEEDUP_MAX,
        paper::cluster_b::SPEEDUP_AVG
    );
    println!("mapjoin OOM failures (paper: none on cluster B): {ooms:?}");

    if let Some(seed) = args.faults {
        eprintln!("\nre-running all 13 queries under the `combined` fault plan (seed {seed})...");
        let impacts = fault_impact(&config, seed).expect("fault impact run failed");
        println!(
            "\nFault impact (combined plan, seed {seed}, measurement scale SF {sf}): \
             every answer identical to the fault-free run\n"
        );
        println!("{}", render_fault_impact(&impacts));
    }
}
