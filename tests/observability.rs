//! Observability end-to-end: traces are deterministic, results are
//! unaffected by recording, and the span/metrics view agrees with the
//! profiles the engines already report.

use clyde_common::obs::{SpanKind, TaskKind};
use clyde_common::Obs;
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_hive::{Hive, JoinStrategy};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::query_by_id;
use clydesdale::Clydesdale;
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Dfs> {
    Dfs::new(
        ClusterSpec::tiny(n),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    )
}

fn load(dfs: &Arc<Dfs>, sf: f64) -> SsbLayout {
    let layout = SsbLayout::default();
    loader::load(
        dfs,
        SsbGen::new(sf, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: true,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    layout
}

fn run_traced(queries: &[&str]) -> (Vec<Vec<clyde_common::Row>>, String, String) {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let obs = Obs::enabled();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache().unwrap();
    let mut rows = Vec::new();
    for id in queries {
        let q = query_by_id(id).unwrap();
        rows.push(clyde.query(&q).unwrap().rows);
    }
    (rows, obs.chrome_trace(), obs.summary())
}

/// Same workload twice → byte-identical trace JSON. Spans carry only
/// simulated time, so nothing about the host machine or run leaks in.
#[test]
fn traces_are_deterministic_across_runs() {
    let queries = ["Q1.1", "Q2.1"];
    let (rows_a, trace_a, summary_a) = run_traced(&queries);
    let (rows_b, trace_b, summary_b) = run_traced(&queries);
    assert_eq!(rows_a, rows_b);
    assert_eq!(trace_a, trace_b, "trace JSON must be byte-identical");
    // The text summary mixes in measured wall clock (by design); everything
    // else — the simulated timeline — must be stable.
    let sim_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.contains("wall"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(sim_lines(&summary_a), sim_lines(&summary_b));
    assert!(trace_a.contains("\"traceEvents\""));
    assert!(trace_a.contains("final-sort"));
}

/// Recording must never change query answers.
#[test]
fn results_identical_with_observability_on_and_off() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let plain = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    let traced = Clydesdale::new(Arc::clone(&dfs), layout.clone()).with_obs(Obs::enabled());
    plain.warm_dimension_cache().unwrap();
    traced.warm_dimension_cache().unwrap();
    let q = query_by_id("Q2.1").unwrap();
    assert_eq!(
        plain.query(&q).unwrap().rows,
        traced.query(&q).unwrap().rows
    );

    let hive_plain = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin);
    let hive_traced =
        Hive::new(Arc::clone(&dfs), layout, JoinStrategy::MapJoin).with_obs(Obs::enabled());
    assert_eq!(
        hive_plain.query(&q).unwrap().rows,
        hive_traced.query(&q).unwrap().rows
    );
}

/// The recorded history and metrics agree with the engine's own profile:
/// one history per job, task lanes matching the task count, and the unified
/// counters reflecting what actually ran.
#[test]
fn histories_and_metrics_mirror_the_job() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let obs = Obs::enabled();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q2.1").unwrap();
    let result = clyde.query(&q).unwrap();

    obs.with_histories(|hs| {
        assert_eq!(hs.len(), 1);
        let h = &hs[0];
        assert_eq!(h.lanes(TaskKind::Map).len(), result.profile.map_tasks.len());
        assert_eq!(
            h.lanes(TaskKind::Reduce).len(),
            result.profile.reduce_tasks.len()
        );
        let st = h.stragglers(TaskKind::Map).unwrap();
        assert!(st.max_s >= st.median_s && st.median_s > 0.0);
        // Simulated history time matches the priced job total.
        assert!((h.total_s() - result.cost.total_s()).abs() < 1e-9);
        // Wall clocks were captured (obs on) but stay out of the trace.
        assert!(h.total_wall_ns() > 0);
    });

    let snap = obs.metrics().snapshot();
    assert_eq!(snap.counter("mapred.jobs"), Some(1));
    assert_eq!(snap.counter("mapred.queries"), Some(1));
    assert_eq!(
        snap.counter("mapred.map_tasks"),
        Some(result.profile.map_tasks.len() as u64)
    );
    assert_eq!(
        snap.counter("mapred.emit.records"),
        Some(result.profile.total_map_cost().emit_records)
    );
    // DFS scope delta fed the registry: the scan moved real bytes.
    let read = snap.counter("dfs.io.local_read_bytes").unwrap_or(0)
        + snap.counter("dfs.io.remote_read_bytes").unwrap_or(0);
    assert!(read > 0);

    // The job span tree is present: one process, a job root, task lanes.
    let spans = obs.spans().spans();
    let jobs = spans.iter().filter(|s| s.kind == SpanKind::Job).count();
    let tasks = spans.iter().filter(|s| s.kind == SpanKind::Task).count();
    assert_eq!(jobs, 1);
    assert_eq!(
        tasks,
        result.profile.map_tasks.len() + result.profile.reduce_tasks.len()
    );

    // Reset gives a clean slate for the next bench iteration.
    obs.reset();
    obs.with_histories(|hs| assert!(hs.is_empty()));
    assert!(obs.metrics().snapshot().entries.is_empty());
    obs.with_query_profiles(|ps| assert!(ps.is_empty()));
}

/// `explain_analyze` returns a per-stage/per-phase profile that accounts
/// for the whole simulated makespan, carries the DFS I/O snapshot, and
/// keeps wall time out of the JSON artifact.
#[test]
fn explain_analyze_profiles_the_query() {
    let dfs = cluster(3);
    let layout = load(&dfs, 0.005);
    let obs = Obs::enabled();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout).with_obs(Arc::clone(&obs));
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q2.1").unwrap();
    let (result, profile) = clyde.explain_analyze(&q).unwrap();

    assert_eq!(profile.query, "Q2.1");
    assert_eq!(profile.jobs.len(), 1);
    let job = &profile.jobs[0];
    assert_eq!(job.map_tasks, result.profile.map_tasks.len());
    assert_eq!(job.reduce_tasks, result.profile.reduce_tasks.len());
    // Stage rows decompose the job's simulated total exactly.
    let stage_sum: f64 = job.stages.iter().map(|s| s.sim_s).sum();
    assert!((stage_sum - job.sim_total_s).abs() < 1e-6);
    assert!((profile.total_s - (job.sim_total_s + profile.final_sort_s)).abs() < 1e-9);
    // Wall measurements rode along for calibration...
    assert!(job.wall_total_ns > 0);
    assert!(job.phases.iter().any(|p| p.drift_pct.is_some()));
    // ...and the DFS per-node I/O snapshot made it into the profile.
    assert!(!profile.io.is_empty());
    assert!(profile.io.iter().map(|io| io.read()).sum::<u64>() > 0);

    // Human rendering carries the calibration verdict; the JSON artifact is
    // sim-only so it can be byte-compared across runs.
    let text = profile.render();
    assert!(text.contains("explain analyze Q2.1"));
    assert!(text.contains("calibration:"));
    assert!(!profile.to_json().contains("wall"));

    // The same profile was recorded on the hub for harness export.
    obs.with_query_profiles(|ps| {
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].query, "Q2.1");
    });

    // Without observability the engine refuses rather than guessing.
    let dfs2 = cluster(3);
    let layout2 = load(&dfs2, 0.005);
    let plain = Clydesdale::new(Arc::clone(&dfs2), layout2);
    plain.warm_dimension_cache().unwrap();
    assert!(plain.explain_analyze(&q).is_err());
}
