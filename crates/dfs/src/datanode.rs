//! Datanodes: per-node block payload storage.

use crate::block::BlockId;
use bytes::Bytes;
use clyde_common::FxHashMap;

/// One datanode's block store. Payloads are `Bytes`, so replicating a block
/// onto three datanodes shares one allocation.
#[derive(Debug, Default)]
pub struct Datanode {
    blocks: FxHashMap<BlockId, Bytes>,
    alive: bool,
}

impl Datanode {
    pub fn new() -> Datanode {
        Datanode {
            blocks: FxHashMap::default(),
            alive: true,
        }
    }

    pub fn store(&mut self, id: BlockId, data: Bytes) {
        self.blocks.insert(id, data);
    }

    pub fn get(&self, id: BlockId) -> Option<Bytes> {
        if self.alive {
            self.blocks.get(&id).cloned()
        } else {
            None
        }
    }

    pub fn has(&self, id: BlockId) -> bool {
        self.alive && self.blocks.contains_key(&id)
    }

    pub fn free(&mut self, id: BlockId) {
        self.blocks.remove(&id);
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Flip the first byte of a stored replica (fault injection). Because
    /// replicas share one `Bytes` allocation, the corrupted copy is written
    /// into a *fresh* buffer so the other datanodes keep the good bytes.
    /// Returns false when the replica is absent or empty.
    pub fn corrupt(&mut self, id: BlockId) -> bool {
        let Some(data) = self.blocks.get(&id) else {
            return false;
        };
        let mut bad = data.to_vec();
        let Some(first) = bad.first_mut() else {
            return false; // empty replica: nothing to flip
        };
        *first ^= 0xff;
        self.blocks.insert(id, Bytes::from(bad));
        true
    }

    /// Simulate a node failure: all local replicas are lost.
    pub fn kill(&mut self) {
        self.alive = false;
        self.blocks.clear();
    }

    /// Bring a (possibly replaced) node back empty.
    pub fn restart(&mut self) {
        self.alive = true;
    }

    /// Bytes currently stored (for capacity accounting in tests).
    pub fn used_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.len() as u64).sum()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_get() {
        let mut dn = Datanode::new();
        dn.store(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(dn.get(BlockId(1)).unwrap(), Bytes::from_static(b"hello"));
        assert!(dn.get(BlockId(2)).is_none());
        assert_eq!(dn.used_bytes(), 5);
        assert_eq!(dn.num_blocks(), 1);
    }

    #[test]
    fn kill_loses_data_and_restart_comes_back_empty() {
        let mut dn = Datanode::new();
        dn.store(BlockId(1), Bytes::from_static(b"x"));
        dn.kill();
        assert!(!dn.is_alive());
        assert!(dn.get(BlockId(1)).is_none());
        assert!(!dn.has(BlockId(1)));
        dn.restart();
        assert!(dn.is_alive());
        assert!(dn.get(BlockId(1)).is_none());
        assert_eq!(dn.used_bytes(), 0);
    }

    #[test]
    fn corrupt_flips_a_byte_without_touching_shared_buffers() {
        let mut dn = Datanode::new();
        let original = Bytes::from_static(b"good");
        dn.store(BlockId(1), original.clone());
        assert!(dn.corrupt(BlockId(1)));
        assert_ne!(dn.get(BlockId(1)).unwrap(), original);
        // The shared allocation other replicas point at is untouched.
        assert_eq!(original, Bytes::from_static(b"good"));
        assert!(!dn.corrupt(BlockId(9)));
        dn.store(BlockId(2), Bytes::new());
        assert!(!dn.corrupt(BlockId(2)));
    }

    #[test]
    fn free_removes_block() {
        let mut dn = Datanode::new();
        dn.store(BlockId(7), Bytes::from_static(b"abc"));
        dn.free(BlockId(7));
        assert!(dn.get(BlockId(7)).is_none());
    }
}
