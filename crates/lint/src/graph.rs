//! Workspace module map, intra-crate call graph, and the static
//! lock-acquisition graph (rule D009).
//!
//! The runtime `clyde_common::lockorder` checker catches lock-order
//! inversions only on schedules that actually interleave them; this module
//! catches them at lint time by over-approximating every acquisition order
//! the code *could* exhibit:
//!
//! * **Lock classes** are receiver names of `Mutex`/`RwLock` declarations,
//!   keyed per crate (`mapred::outputs`). Class-level, not instance-level —
//!   two elements of one `Vec<Mutex<_>>` share a class, which is exactly
//!   the granularity the runtime checker uses.
//! * **Direct edges** `A → B`: function acquires B while a guard of A is
//!   statically held. Guard extent is tracked syntactically: a let-bound
//!   guard lives until its enclosing brace closes or an explicit
//!   `drop(guard)`; an expression temporary (`x.lock().unwrap().push(..)`)
//!   lives only to the end of its statement. `try_lock` never contributes
//!   an edge (it cannot block).
//! * **Transitive edges** flow through the intra-crate call graph: if `f`
//!   holds A and calls `g`, every class in `g`'s transitive acquire set
//!   gets an `A → …` edge. Call resolution is by simple name within the
//!   crate — an over-approximation (all same-named fns are candidate
//!   callees), which errs toward reporting.
//!
//! A cycle in the resulting digraph is a schedule that can deadlock; D009
//! reports each elementary cycle once, anchored at its first edge's source
//! location.

use crate::parse::{let_binding_before, FileAst};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a blocking guard on a lock-class receiver.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One acquisition-order edge, with the site that established it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    /// Present when the edge flows through a call (`holder -> callee`).
    pub via_call: Option<String>,
}

/// The lock analysis of one crate (or one file treated as its own crate).
#[derive(Debug, Default)]
pub struct LockGraph {
    pub edges: Vec<LockEdge>,
    /// Elementary cycles, each a class path `[a, b, .., a]` plus the edge
    /// anchoring the report.
    pub cycles: Vec<(Vec<String>, LockEdge)>,
}

#[derive(Debug, Default)]
struct FnLocks {
    /// Classes this fn acquires directly.
    acquires: BTreeSet<String>,
    /// `(held classes, callee simple name, file, line)` for calls made under
    /// at least one held guard.
    calls_held: Vec<(BTreeSet<String>, String, String, usize)>,
    /// All intra-crate callees (for the transitive-acquire fixpoint).
    callees: BTreeSet<String>,
}

/// Build the lock graph for one crate's files.
///
/// `files` pairs each display path with its parsed AST; lock classes and the
/// call graph are resolved across the whole slice.
pub fn analyze_locks(files: &[(&str, &FileAst)]) -> LockGraph {
    // Crate-wide lock classes and fn-name set.
    let mut classes: BTreeSet<&str> = BTreeSet::new();
    let mut fn_names: BTreeSet<&str> = BTreeSet::new();
    for (_, ast) in files {
        classes.extend(ast.lock_names.iter().map(String::as_str));
        fn_names.extend(
            ast.fns
                .iter()
                .filter(|f| !f.is_test)
                .map(|f| f.name.as_str()),
        );
    }
    if classes.is_empty() {
        return LockGraph::default();
    }

    let mut per_fn: BTreeMap<String, FnLocks> = BTreeMap::new();
    let mut direct_edges: Vec<LockEdge> = Vec::new();

    for (path, ast) in files {
        for f in ast.fns.iter().filter(|f| !f.is_test && !f.nested) {
            let locks = scan_fn(path, ast, &f.body, &classes, &fn_names, &mut direct_edges);
            let entry = per_fn.entry(f.name.clone()).or_default();
            entry.acquires.extend(locks.acquires);
            entry.calls_held.extend(locks.calls_held);
            entry.callees.extend(locks.callees);
        }
    }

    // Fixpoint: transitive acquire sets through the call graph.
    let mut trans: BTreeMap<&str, BTreeSet<String>> = per_fn
        .iter()
        .map(|(name, fl)| (name.as_str(), fl.acquires.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, fl) in &per_fn {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in &fl.callees {
                if let Some(set) = trans.get(callee.as_str()) {
                    add.extend(set.iter().cloned());
                }
            }
            let cur = trans.get_mut(name.as_str()).expect("seeded above");
            let before = cur.len();
            cur.extend(add);
            changed |= cur.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Edges through calls: held classes order-before everything the callee
    // (transitively) acquires.
    let mut edges: BTreeSet<LockEdge> = direct_edges.into_iter().collect();
    for fl in per_fn.values() {
        for (held, callee, file, line) in &fl.calls_held {
            let Some(acq) = trans.get(callee.as_str()) else {
                continue;
            };
            for h in held {
                for a in acq {
                    if h != a {
                        edges.insert(LockEdge {
                            from: h.clone(),
                            to: a.clone(),
                            file: file.clone(),
                            line: *line,
                            via_call: Some(callee.clone()),
                        });
                    }
                }
            }
        }
    }

    let edges: Vec<LockEdge> = edges.into_iter().collect();
    let cycles = find_cycles(&edges);
    LockGraph { edges, cycles }
}

/// Scan one fn body for acquisitions, tracking guard extents.
fn scan_fn(
    path: &str,
    ast: &FileAst,
    body: &std::ops::Range<usize>,
    classes: &BTreeSet<&str>,
    fn_names: &BTreeSet<&str>,
    edges: &mut Vec<LockEdge>,
) -> FnLocks {
    struct Guard {
        class: String,
        /// `Some(depth)`: let-bound, released when brace depth drops below
        /// `depth`. `None`: statement temporary, released at the next `;`.
        scope_depth: Option<u32>,
        binding: Option<String>,
    }
    let mut held: Vec<Guard> = Vec::new();
    let mut out = FnLocks::default();

    for i in body.clone() {
        let depth = ast.depth[i];
        held.retain(|g| g.scope_depth.is_none_or(|d| depth >= d));
        let t = ast.tok(i);
        if t.kind == crate::lexer::TokKind::Punct && t.text == ";" {
            held.retain(|g| g.scope_depth.is_some());
            continue;
        }
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        // `drop(guard)` releases a named guard early.
        if t.text == "drop" && ast.is_punct(i + 1, "(") {
            if let Some(name_tok) = ast.sig.get(i + 2) {
                held.retain(|g| g.binding.as_deref() != Some(name_tok.text.as_str()));
            }
            continue;
        }
        // Acquisition: `<receiver>.lock(` / `.read(` / `.write(` where the
        // receiver's last ident is a known lock class. `try_lock` is a
        // different method name and so is exempt by construction.
        let is_acquire = ACQUIRE_METHODS.contains(&t.text.as_str())
            && i > 0
            && ast.is_punct(i - 1, ".")
            && ast.is_punct(i + 1, "(");
        if is_acquire {
            if let Some(class) = receiver_class(ast, i - 1, classes) {
                for g in &held {
                    if g.class != class {
                        edges.push(LockEdge {
                            from: g.class.clone(),
                            to: class.clone(),
                            file: path.to_string(),
                            line: ast.line(i),
                            via_call: None,
                        });
                    }
                }
                out.acquires.insert(class.clone());
                // A `let` binds the *guard* only when nothing but
                // `unwrap`/`expect` is chained after the acquire —
                // `let n = x.lock().len();` binds the length, and the
                // guard is a statement temporary.
                let binding = let_binding_before(ast, i).filter(|_| guard_chain_only(ast, i + 1));
                held.push(Guard {
                    class,
                    scope_depth: binding.as_ref().map(|_| depth),
                    binding,
                });
            }
            continue;
        }
        // Intra-crate call, resolved by simple name. Plain calls always
        // resolve; method calls only on a `self` receiver — resolving
        // `data.len()` to every crate fn named `len` would invent edges.
        if ast.is_punct(i + 1, "(") && fn_names.contains(t.text.as_str()) {
            let is_method = i > 0 && ast.is_punct(i - 1, ".");
            let resolvable = !is_method || (i >= 2 && ast.is_ident(i - 2, "self"));
            if resolvable {
                out.callees.insert(t.text.clone());
                if !held.is_empty() {
                    out.calls_held.push((
                        held.iter().map(|g| g.class.clone()).collect(),
                        t.text.clone(),
                        path.to_string(),
                        ast.line(i),
                    ));
                }
            }
        }
    }
    out
}

/// True when the expression chained after an acquire call is at most
/// `.unwrap()` / `.expect(..)` — i.e. the statement's value *is* the guard.
/// Any other chained method (`.get(..)`, `.len()`) consumes the guard as a
/// temporary, so a surrounding `let` binds the method's result instead.
/// `open_at` is the index of the `(` that follows the acquire method name.
fn guard_chain_only(ast: &FileAst, open_at: usize) -> bool {
    let mut j = match skip_paren_group(ast, open_at) {
        Some(j) => j,
        None => return false,
    };
    loop {
        if !ast.is_punct(j, ".") {
            return true; // `;`, `?`, operator, `}` … — chain ends here
        }
        let is_adapter = ast.sig.get(j + 1).is_some_and(|t| {
            t.kind == crate::lexer::TokKind::Ident && (t.text == "unwrap" || t.text == "expect")
        }) && ast.is_punct(j + 2, "(");
        if !is_adapter {
            return false;
        }
        j = match skip_paren_group(ast, j + 2) {
            Some(next) => next,
            None => return false,
        };
    }
}

/// Index just past the `)` matching the `(` at `open_at`, or `None` if the
/// group never closes (truncated input).
fn skip_paren_group(ast: &FileAst, open_at: usize) -> Option<usize> {
    if !ast.is_punct(open_at, "(") {
        return None;
    }
    let mut depth = 0usize;
    for j in open_at..ast.sig.len() {
        if ast.is_punct(j, "(") {
            depth += 1;
        } else if ast.is_punct(j, ")") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// The lock class of the receiver ending at the `.` token `dot_at`:
/// the nearest ident walking back over one `[index]` suffix if present
/// (`self.outs[i].lock()` → `outs`).
fn receiver_class(ast: &FileAst, dot_at: usize, classes: &BTreeSet<&str>) -> Option<String> {
    let mut j = dot_at;
    if j == 0 {
        return None;
    }
    j -= 1;
    if ast.is_punct(j, "]") {
        // Walk back to the matching `[`.
        let mut depth = 1;
        while j > 0 && depth > 0 {
            j -= 1;
            if ast.is_punct(j, "]") {
                depth += 1;
            } else if ast.is_punct(j, "[") {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    let t = ast.sig.get(j)?;
    if t.kind == crate::lexer::TokKind::Ident && classes.contains(t.text.as_str()) {
        Some(t.text.clone())
    } else {
        None
    }
}

/// Elementary cycles in the class digraph, each reported once (canonical
/// rotation starting at the lexically smallest class).
fn find_cycles(edges: &[LockEdge]) -> Vec<(Vec<String>, LockEdge)> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut cycles = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut path_edges: Vec<&LockEdge> = Vec::new();
        dfs(
            start,
            start,
            &adj,
            &mut stack,
            &mut path_edges,
            &mut seen,
            &mut cycles,
            0,
        );
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
    stack: &mut Vec<&'a str>,
    path_edges: &mut Vec<&'a LockEdge>,
    seen: &mut BTreeSet<Vec<String>>,
    cycles: &mut Vec<(Vec<String>, LockEdge)>,
    depth: usize,
) {
    if depth > 32 {
        return; // pathological input; classes are few in practice
    }
    let Some(outs) = adj.get(node) else { return };
    for e in outs {
        if e.to == start {
            let mut cyc: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            cyc.push(start.to_string());
            // Canonicalize: rotate so the smallest class leads.
            let min_pos = cyc[..cyc.len() - 1]
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut canon: Vec<String> = Vec::with_capacity(cyc.len());
            for k in 0..cyc.len() - 1 {
                canon.push(cyc[(min_pos + k) % (cyc.len() - 1)].clone());
            }
            canon.push(canon[0].clone());
            if seen.insert(canon.clone()) {
                let anchor = path_edges.first().copied().unwrap_or(e).clone();
                cycles.push((canon, anchor));
            }
            continue;
        }
        if stack.contains(&e.to.as_str()) {
            continue; // inner cycle; found from its own start node
        }
        stack.push(&e.to);
        path_edges.push(e);
        dfs(
            &e.to,
            start,
            adj,
            stack,
            path_edges,
            seen,
            cycles,
            depth + 1,
        );
        path_edges.pop();
        stack.pop();
    }
}

/// The crate key of a workspace-relative path: the component after
/// `crates/`, else `root` (top-level `src/`, `tests/`, `examples/`).
pub fn crate_of(rel_path: &str) -> String {
    let norm = rel_path.replace('\\', "/");
    if let Some(rest) = norm.split("crates/").nth(1) {
        if let Some(name) = rest.split('/').next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn graph_of(src: &str) -> LockGraph {
        analyze_locks(&[("crates/x/src/lib.rs", &parse(&lex(src)))])
    }

    #[test]
    fn ab_ba_is_a_cycle() {
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn ab(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }
                fn ba(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
            }
        "#;
        let g = graph_of(src);
        assert_eq!(g.cycles.len(), 1, "edges: {:?}", g.edges);
        assert_eq!(g.cycles[0].0, vec!["a", "b", "a"]);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }
                fn g(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }
            }
        "#;
        let g = graph_of(src);
        assert!(g.cycles.is_empty());
        assert!(g.edges.iter().all(|e| e.from == "a" && e.to == "b"));
    }

    #[test]
    fn statement_temporaries_do_not_overlap() {
        // `x.lock().unwrap().push(..);` releases at the semicolon — the two
        // acquisitions never coexist, so no edge in either direction.
        let src = r#"
            struct S { a: Mutex<Vec<u32>>, b: Mutex<Vec<u32>> }
            impl S {
                fn f(&self) { self.a.lock().unwrap().push(1); self.b.lock().unwrap().push(2); }
                fn g(&self) { self.b.lock().unwrap().push(1); self.a.lock().unwrap().push(2); }
            }
        "#;
        let g = graph_of(src);
        assert!(g.edges.is_empty(), "edges: {:?}", g.edges);
    }

    #[test]
    fn drop_releases_early() {
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) {
                    let ga = self.a.lock().unwrap();
                    drop(ga);
                    let gb = self.b.lock().unwrap();
                }
                fn g(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
            }
        "#;
        let g = graph_of(src);
        assert!(g.cycles.is_empty(), "cycles: {:?}", g.cycles);
    }

    #[test]
    fn block_scope_releases_guards() {
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) {
                    { let ga = self.a.lock().unwrap(); }
                    let gb = self.b.lock().unwrap();
                }
                fn g(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
            }
        "#;
        assert!(graph_of(src).cycles.is_empty());
    }

    #[test]
    fn edges_flow_through_calls() {
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn leaf(&self) { let gb = self.b.lock().unwrap(); }
                fn f(&self) { let ga = self.a.lock().unwrap(); self.leaf(); }
                fn g(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }
            }
        "#;
        let g = graph_of(src);
        assert_eq!(g.cycles.len(), 1, "edges: {:?}", g.edges);
        assert!(g
            .edges
            .iter()
            .any(|e| e.via_call.as_deref() == Some("leaf")));
    }

    #[test]
    fn rwlock_and_indexed_receivers_count() {
        let src = r#"
            struct S { state: RwLock<u32>, outs: Vec<Mutex<u8>> }
            impl S {
                fn f(&self, i: usize) {
                    let g = self.state.write().unwrap();
                    let o = self.outs[i].lock().unwrap();
                }
            }
        "#;
        let g = graph_of(src);
        assert!(g.edges.iter().any(|e| e.from == "state" && e.to == "outs"));
    }

    #[test]
    fn chained_method_makes_guard_a_temporary() {
        // `let data = self.a.lock().get(k).cloned()…;` binds the clone, not
        // the guard — the guard dies at the semicolon, so the later `b`
        // acquisition does not overlap it (the distcache::fetch shape).
        let src = r#"
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            impl S {
                fn f(&self) {
                    let data = self.a.lock().get(0).cloned();
                    let n = self.b.lock().insert(1);
                }
                fn g(&self) {
                    let n = self.b.lock().len();
                    let data = self.a.lock().get(0).cloned();
                }
            }
        "#;
        let g = graph_of(src);
        assert!(g.edges.is_empty(), "edges: {:?}", g.edges);
    }

    #[test]
    fn non_self_method_calls_do_not_resolve() {
        // `data.len()` must not resolve to the crate's own `len` (which
        // locks `a`) — the receiver is not `self`.
        let src = r#"
            struct S { a: Mutex<Vec<u8>>, b: Mutex<u64> }
            impl S {
                fn len(&self) -> usize { self.a.lock().unwrap().len() }
                fn f(&self, data: &[u8]) {
                    let gb = self.b.lock().unwrap();
                    let n = data.len();
                }
                fn g(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                }
            }
        "#;
        let g = graph_of(src);
        assert!(g.cycles.is_empty(), "edges: {:?}", g.edges);
        // …but a `self` receiver still flows through the call graph.
        let src_self = r#"
            struct S { a: Mutex<Vec<u8>>, b: Mutex<u64> }
            impl S {
                fn len(&self) -> usize { self.a.lock().unwrap().len() }
                fn f(&self) {
                    let gb = self.b.lock().unwrap();
                    let n = self.len();
                }
                fn g(&self) {
                    let ga = self.a.lock().unwrap();
                    let gb = self.b.lock().unwrap();
                }
            }
        "#;
        assert_eq!(graph_of(src_self).cycles.len(), 1);
    }

    #[test]
    fn crate_keys() {
        assert_eq!(crate_of("crates/mapred/src/engine.rs"), "mapred");
        assert_eq!(crate_of("tests/determinism.rs"), "root");
        assert_eq!(crate_of("src/main.rs"), "root");
    }
}
