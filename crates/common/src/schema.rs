//! Table and record schemas.

use crate::datum::{Datum, DatumType};
use crate::error::{ClydeError, Result};
use crate::row::Row;
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DatumType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DatumType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }

    pub fn i32(name: impl Into<String>) -> Field {
        Field::new(name, DatumType::I32)
    }

    pub fn i64(name: impl Into<String>) -> Field {
        Field::new(name, DatumType::I64)
    }

    pub fn f64(name: impl Into<String>) -> Field {
        Field::new(name, DatumType::F64)
    }

    pub fn str(name: impl Into<String>) -> Field {
        Field::new(name, DatumType::Str)
    }
}

/// An ordered collection of fields describing a table or record stream.
///
/// Schemas are cheaply cloneable (`Arc` inside) because every split reader,
/// map task, and hash table holds one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema {
            fields: fields.into(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ClydeError::Plan(format!("unknown column: {name}")))
    }

    /// Indices of several columns, in the order given.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// A new schema containing only the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Validate that a row matches this schema (NULLs match any type).
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.len() {
            return Err(ClydeError::Format(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.len()
            )));
        }
        for (i, (v, f)) in row.iter().zip(self.fields.iter()).enumerate() {
            match v.datum_type() {
                None => {}
                Some(t) if t == f.dtype => {}
                Some(t) => {
                    return Err(ClydeError::Format(format!(
                        "column {i} ({}) expects {} but row holds {t}",
                        f.name, f.dtype
                    )))
                }
            }
        }
        Ok(())
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}:{}", fld.name, fld.dtype)?;
        }
        f.write_str("]")
    }
}

/// Default datum for a type, used when padding or initializing accumulators.
pub fn zero_datum(t: DatumType) -> Datum {
    match t {
        DatumType::I32 => Datum::I32(0),
        DatumType::I64 => Datum::I64(0),
        DatumType::F64 => Datum::F64(0.0),
        DatumType::Str => Datum::str(""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::i32("id"),
            Field::str("name"),
            Field::i64("amount"),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert_eq!(s.indices_of(&["amount", "id"]).unwrap(), vec![2, 0]);
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.names(), vec!["amount", "id"]);
        assert_eq!(s.field(0).dtype, DatumType::I64);
    }

    #[test]
    fn row_validation() {
        let s = sample();
        assert!(s.check_row(&row![1i32, "a", 2i64]).is_ok());
        // NULL matches any type.
        let mut r = Row::empty();
        r.push(Datum::Null);
        r.push(Datum::Null);
        r.push(Datum::Null);
        assert!(s.check_row(&r).is_ok());
        // Wrong arity.
        assert!(s.check_row(&row![1i32]).is_err());
        // Wrong type.
        assert!(s.check_row(&row![1i32, 2i32, 3i64]).is_err());
    }

    #[test]
    fn display_lists_fields() {
        assert_eq!(sample().to_string(), "[id:i32, name:str, amount:i64]");
    }

    #[test]
    fn zero_datums() {
        assert_eq!(zero_datum(DatumType::I32), Datum::I32(0));
        assert_eq!(zero_datum(DatumType::Str), Datum::str(""));
    }
}
