//! Pluggable block placement policies.
//!
//! CIF (the paper's column-oriented InputFormat, Section 4.1) stores each
//! column of a row group in a separate DFS file, which creates a problem on a
//! replicated filesystem: unless the blocks of *all* column files of a row
//! group land on the same datanodes, no node can process the row group fully
//! locally. The paper solves this with HDFS 0.21's pluggable placement
//! policies; [`ColocatingPlacement`] is our equivalent.
//!
//! Policies are deterministic functions of (path, placement group, block
//! index), which keeps the whole simulation reproducible without placement
//! state at the namenode.

use crate::topology::NodeId;
use std::hash::{Hash, Hasher};

use clyde_common::hash::FxHasher;

/// Decides which datanodes receive the replicas of a new block.
pub trait BlockPlacementPolicy: Send + Sync {
    /// Choose `replication` distinct target nodes out of `num_nodes` for
    /// block `block_index` of `path`. `group` is the optional *placement
    /// group* the file was created with (CIF uses the row-group directory).
    ///
    /// Implementations must return exactly `min(replication, num_nodes)`
    /// distinct nodes and must be deterministic.
    fn choose_targets(
        &self,
        path: &str,
        group: Option<&str>,
        block_index: usize,
        replication: u32,
        num_nodes: usize,
    ) -> Vec<NodeId>;

    /// Human-readable name for logs and metrics.
    fn name(&self) -> &'static str;
}

fn hash64(s: &str, extra: u64) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    extra.hash(&mut h);
    h.finish()
}

/// `start, start+1, ..., start+r-1 (mod n)` — a deterministic stand-in for
/// HDFS's random-with-rack-awareness spread.
fn ring_targets(start: u64, replication: u32, num_nodes: usize) -> Vec<NodeId> {
    let n = num_nodes.max(1);
    let r = (replication as usize).min(n).max(1);
    let s = (start % n as u64) as usize;
    (0..r).map(|i| NodeId((s + i) % n)).collect()
}

/// HDFS-like default policy: each block of each file is placed independently
/// (hash of path and block index). Column files of the same row group will
/// usually **not** be co-located — this is exactly the problem CIF fixes, and
/// keeping the default policy around lets us test and measure the difference.
#[derive(Debug, Default, Clone)]
pub struct DefaultPlacement;

impl BlockPlacementPolicy for DefaultPlacement {
    fn choose_targets(
        &self,
        path: &str,
        _group: Option<&str>,
        block_index: usize,
        replication: u32,
        num_nodes: usize,
    ) -> Vec<NodeId> {
        ring_targets(hash64(path, block_index as u64), replication, num_nodes)
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

/// Co-locating policy: every block of every file sharing a placement group
/// goes to the same node set, so a map task scheduled on any of those nodes
/// reads *all* columns of its row group locally (paper Section 4.1).
///
/// Files created without a group fall back to per-path placement (all blocks
/// of the file together), which keeps whole-file locality for dimension
/// tables and intermediate results.
#[derive(Debug, Default, Clone)]
pub struct ColocatingPlacement;

impl BlockPlacementPolicy for ColocatingPlacement {
    fn choose_targets(
        &self,
        path: &str,
        group: Option<&str>,
        _block_index: usize,
        replication: u32,
        num_nodes: usize,
    ) -> Vec<NodeId> {
        let key = group.unwrap_or(path);
        ring_targets(hash64(key, 0), replication, num_nodes)
    }

    fn name(&self) -> &'static str {
        "colocating"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_distinct_and_sized() {
        let p = DefaultPlacement;
        for nodes in [1usize, 2, 3, 8, 40] {
            for r in [1u32, 2, 3, 5] {
                let t = p.choose_targets("/a/b", None, 0, r, nodes);
                assert_eq!(t.len(), (r as usize).min(nodes));
                let mut sorted = t.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), t.len(), "targets must be distinct");
                assert!(t.iter().all(|n| n.0 < nodes));
            }
        }
    }

    #[test]
    fn default_policy_is_deterministic_but_spreads_blocks() {
        let p = DefaultPlacement;
        let a = p.choose_targets("/fact/rg0/c1.col", None, 0, 3, 8);
        let b = p.choose_targets("/fact/rg0/c1.col", None, 0, 3, 8);
        assert_eq!(a, b);
        // Different blocks of the same file generally scatter. With 8 nodes
        // and 16 blocks at least two placements must differ.
        let placements: Vec<_> = (0..16)
            .map(|i| p.choose_targets("/fact/rg0/c1.col", None, i, 3, 8))
            .collect();
        assert!(placements.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn colocating_policy_groups_column_files() {
        let p = ColocatingPlacement;
        let g = Some("/fact/rg17");
        let a = p.choose_targets("/fact/rg17/lo_custkey.col", g, 0, 3, 8);
        let b = p.choose_targets("/fact/rg17/lo_revenue.col", g, 3, 3, 8);
        let c = p.choose_targets("/fact/rg17/lo_orderdate.col", g, 1, 3, 8);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // A different row group generally lands elsewhere; with 8 nodes and
        // many groups at least one differs.
        let other: Vec<_> = (0..16)
            .map(|i| p.choose_targets("/fact/x.col", Some(&format!("/fact/rg{i}")), 0, 3, 8))
            .collect();
        assert!(other.iter().any(|t| *t != a));
    }

    #[test]
    fn colocating_policy_without_group_keeps_file_together() {
        let p = ColocatingPlacement;
        let a = p.choose_targets("/dims/customer.bin", None, 0, 3, 8);
        let b = p.choose_targets("/dims/customer.bin", None, 9, 3, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn single_node_cluster_works() {
        let p = ColocatingPlacement;
        let t = p.choose_targets("/x", Some("/g"), 0, 3, 1);
        assert_eq!(t, vec![NodeId(0)]);
    }
}
