//! Real wall-clock scan throughput of the storage formats (this library's
//! own performance, complementing the simulated figures): CIF projected vs
//! CIF all-columns vs RCFile vs text, over the same SSB fact data.

use clyde_columnar::{CifReader, RcFileReader, TextInputFormat};
use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions};
use clyde_mapred::{InputFormat, JobConf, Reader, TaskIo};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::schema;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const ROWS: u64 = 120_000; // SF 0.02

fn setup() -> (Arc<Dfs>, SsbLayout) {
    let dfs = Dfs::new(
        ClusterSpec::tiny(2),
        DfsOptions {
            block_size: 8 << 20,
            replication: 1,
            policy: Box::new(ColocatingPlacement),
        },
    );
    let layout = SsbLayout::default();
    loader::load(
        &dfs,
        SsbGen::new(ROWS as f64 / 6_000_000.0, 46),
        &layout,
        &loader::LoadOpts {
            rows_per_group: 20_000,
            cif: true,
            rcfile: true,
            text: true,
            cluster_by_date: true,
        },
    )
    .expect("load");
    (dfs, layout)
}

fn bench_scans(c: &mut Criterion) {
    let (dfs, layout) = setup();
    let q21_cols = ["lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"];

    let mut group = c.benchmark_group("scan_formats");
    group.throughput(Throughput::Elements(ROWS));

    group.bench_function(BenchmarkId::new("cif", "4-of-17-columns"), |b| {
        let reader = CifReader::open(&dfs, &layout.fact_cif()).unwrap();
        let cols: Vec<usize> = q21_cols
            .iter()
            .map(|c| reader.column_index(c).unwrap())
            .collect();
        b.iter(|| {
            let io = TaskIo::client(Arc::clone(&dfs));
            let mut sum = 0i64;
            for g in 0..reader.meta().num_groups() {
                let blk = reader.read_group(&io, g, &cols).unwrap();
                for &v in blk.column(3).as_i32() {
                    sum += i64::from(v);
                }
            }
            sum
        });
    });

    group.bench_function(BenchmarkId::new("cif", "all-17-columns"), |b| {
        let reader = CifReader::open(&dfs, &layout.fact_cif()).unwrap();
        b.iter(|| {
            let io = TaskIo::client(Arc::clone(&dfs));
            let mut rows = 0usize;
            for g in 0..reader.meta().num_groups() {
                let blk = reader.read_group_all(&io, g).unwrap();
                rows += blk.len();
            }
            rows
        });
    });

    group.bench_function(BenchmarkId::new("rcfile", "4-of-17-columns"), |b| {
        let reader = RcFileReader::open(&dfs, &layout.table_rc(schema::LINEORDER)).unwrap();
        let cols: Vec<usize> = q21_cols
            .iter()
            .map(|c| reader.schema().index_of(c).unwrap())
            .collect();
        b.iter(|| {
            let io = TaskIo::client(Arc::clone(&dfs));
            let mut sum = 0i64;
            for g in 0..reader.meta().num_groups() {
                let blk = reader.read_group(&io, g, &cols).unwrap();
                for &v in blk.column(3).as_i32() {
                    sum += i64::from(v);
                }
            }
            sum
        });
    });

    group.bench_function(BenchmarkId::new("text", "parse-all-columns"), |b| {
        let fmt = TextInputFormat::new(
            layout.table_text(schema::LINEORDER),
            schema::lineorder_schema(),
        );
        let splits = fmt.splits(&dfs, &JobConf::new()).unwrap();
        b.iter(|| {
            let io = TaskIo::client(Arc::clone(&dfs));
            let mut rows = 0usize;
            for s in &splits {
                let Reader::Rows(mut r) = fmt.open(s, 0, &io).unwrap() else {
                    unreachable!("text yields rows")
                };
                while let Some(_) = r.next().unwrap() {
                    rows += 1;
                }
            }
            rows
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
