//! Per-node local storage.
//!
//! Clydesdale (paper Section 4, Figure 2) keeps a master copy of the
//! dimension tables in HDFS and **caches them on the local disk of every
//! node**; map tasks build their hash tables from the local copy, and a node
//! that lost its cache (new node, disk failure) re-copies from HDFS. This
//! module is that local disk: a per-node keyed byte store with read
//! accounting, plus the fetch-through-DFS repair path.

use crate::dfs::Dfs;
use crate::topology::NodeId;
use bytes::Bytes;
use clyde_common::lockorder::Mutex;
use clyde_common::{FxHashMap, Result};

/// Local (non-replicated) storage for each node of a cluster.
pub struct NodeLocalStore {
    nodes: Vec<Mutex<FxHashMap<String, Bytes>>>,
    /// Bytes read from local store, per node (feeds the cost model).
    read_bytes: Mutex<Vec<u64>>,
}

impl NodeLocalStore {
    pub fn new(num_nodes: usize) -> NodeLocalStore {
        NodeLocalStore {
            nodes: (0..num_nodes)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            read_bytes: Mutex::new(vec![0; num_nodes]),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Store `data` under `key` on `node`'s local disk.
    pub fn put(&self, node: NodeId, key: impl Into<String>, data: Bytes) {
        self.nodes[node.0].lock().insert(key.into(), data);
    }

    /// Read `key` from `node`'s local disk.
    pub fn get(&self, node: NodeId, key: &str) -> Option<Bytes> {
        let data = self.nodes[node.0].lock().get(key).cloned();
        if let Some(d) = &data {
            self.read_bytes.lock()[node.0] += d.len() as u64;
        }
        data
    }

    /// Read `key` locally, fetching it from the DFS (and caching it) if the
    /// local copy is missing — the paper's repair path for nodes that lost
    /// their dimension cache.
    pub fn get_or_fetch(&self, node: NodeId, key: &str, dfs: &Dfs) -> Result<Bytes> {
        if let Some(d) = self.get(node, key) {
            return Ok(d);
        }
        let data = dfs.read_file(key, Some(node))?;
        self.put(node, key, data.clone());
        Ok(data)
    }

    /// Replicate a DFS file onto every node's local disk (used when loading
    /// dimension tables).
    pub fn broadcast_from_dfs(&self, key: &str, dfs: &Dfs) -> Result<()> {
        for n in 0..self.nodes.len() {
            let node = NodeId(n);
            let data = dfs.read_file(key, Some(node))?;
            self.put(node, key, data);
        }
        Ok(())
    }

    /// Drop `node`'s entire local cache (simulates a local-disk failure).
    pub fn clear_node(&self, node: NodeId) {
        self.nodes[node.0].lock().clear();
    }

    /// Total bytes read from local stores so far, per node.
    pub fn read_bytes(&self) -> Vec<u64> {
        self.read_bytes.lock().clone()
    }

    /// Bytes currently cached on `node`.
    pub fn used_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node.0]
            .lock()
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_is_per_node() {
        let ls = NodeLocalStore::new(2);
        ls.put(NodeId(0), "k", Bytes::from_static(b"v"));
        assert_eq!(ls.get(NodeId(0), "k").unwrap(), Bytes::from_static(b"v"));
        assert!(ls.get(NodeId(1), "k").is_none());
        assert_eq!(ls.read_bytes(), vec![1, 0]);
    }

    #[test]
    fn fetch_through_repairs_missing_cache() {
        let dfs = Dfs::for_tests(3);
        dfs.write_file("/dims/date.bin", None, b"dimension-data")
            .unwrap();
        let ls = NodeLocalStore::new(3);
        ls.broadcast_from_dfs("/dims/date.bin", &dfs).unwrap();
        assert_eq!(ls.used_bytes(NodeId(2)), 14);

        // Simulate local-disk failure on node 1, then repair via DFS.
        ls.clear_node(NodeId(1));
        assert!(ls.get(NodeId(1), "/dims/date.bin").is_none());
        let d = ls.get_or_fetch(NodeId(1), "/dims/date.bin", &dfs).unwrap();
        assert_eq!(&d[..], b"dimension-data");
        // Now cached again.
        assert!(ls.get(NodeId(1), "/dims/date.bin").is_some());
    }

    #[test]
    fn fetch_of_unknown_key_errors() {
        let dfs = Dfs::for_tests(2);
        let ls = NodeLocalStore::new(2);
        assert!(ls.get_or_fetch(NodeId(0), "/missing", &dfs).is_err());
    }
}
