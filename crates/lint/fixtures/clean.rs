//! Clean fixture: deterministic idioms and correctly pragma'd exceptions.
//! `clyde-lint --self-test` must find nothing here. Prose mentions of
//! HashMap, Mutex, Instant::now, and thread_rng must not trip the scanner
//! (comments and strings are masked).

use std::collections::{BTreeMap, HashMap};

/// Sorted drain: hash-map contents leave through an ordered vector.
pub fn sorted_report(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
    rows.sort();
    rows
}

/// Ordered by construction.
pub fn tree_report(tree: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in tree {
        out.push_str(&format!("{k} = {v}\n"));
    }
    out
}

/// Order-insensitive reduction on the same line is fine.
pub fn total(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}

/// A justified exception rides on a pragma with a mandatory reason.
pub fn xor_digest(counts: &HashMap<String, u64>) -> u64 {
    // clyde-lint: allow(unordered, reason=xor fold is commutative, order cannot escape)
    counts.values().fold(0u64, |acc, &v| acc ^ v)
}

pub fn describe() -> &'static str {
    "strings mentioning Mutex, RwLock, Instant::now and thread_rng are masked"
}
