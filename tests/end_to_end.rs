//! Cross-crate integration: the full pipeline from generation to query
//! results, across engines, storage formats, and failure scenarios.

use clyde_dfs::{ClusterSpec, ColocatingPlacement, Dfs, DfsOptions, NodeId};
use clyde_hive::{Hive, JoinStrategy};
use clyde_ssb::gen::SsbGen;
use clyde_ssb::loader::{self, SsbLayout};
use clyde_ssb::{query_by_id, reference_answer};
use clydesdale::{Clydesdale, Features};
use std::sync::Arc;

fn cluster(n: usize) -> Arc<Dfs> {
    Dfs::new(
        ClusterSpec::tiny(n),
        DfsOptions {
            block_size: 1 << 20,
            replication: 2,
            policy: Box::new(ColocatingPlacement),
        },
    )
}

fn load(dfs: &Arc<Dfs>, sf: f64) -> (SsbLayout, SsbGen) {
    let layout = SsbLayout::default();
    let gen = SsbGen::new(sf, 46);
    loader::load(
        dfs,
        gen,
        &layout,
        &loader::LoadOpts {
            rows_per_group: 2_000,
            cif: true,
            rcfile: true,
            text: false,
            cluster_by_date: true,
        },
    )
    .unwrap();
    (layout, gen)
}

/// The central correctness claim: three independent implementations of the
/// same query semantics (Clydesdale's n-way map-side join, Hive's staged
/// two-way joins in both plan flavors, and the single-process reference)
/// agree bit-for-bit.
#[test]
fn three_engines_agree_on_representative_queries() {
    let dfs = cluster(3);
    let (layout, gen) = load(&dfs, 0.005);
    let data = gen.gen_all();

    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    clyde.warm_dimension_cache().unwrap();
    let mapjoin = Hive::new(Arc::clone(&dfs), layout.clone(), JoinStrategy::MapJoin);
    let repart = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::Repartition);

    // One query per flight (the per-query exhaustive check lives in the
    // engine crates' own tests).
    for id in ["Q1.1", "Q2.1", "Q3.1", "Q4.3"] {
        let q = query_by_id(id).unwrap();
        let expect = reference_answer(&data, &q).unwrap();
        assert_eq!(clyde.query(&q).unwrap().rows, expect, "{id} clydesdale");
        assert_eq!(mapjoin.query(&q).unwrap().rows, expect, "{id} mapjoin");
        assert_eq!(repart.query(&q).unwrap().rows, expect, "{id} repartition");
    }
}

/// Kill a datanode mid-workload: re-replication restores redundancy and the
/// query keeps answering correctly from surviving replicas — the
/// fault-tolerance property the paper keeps by staying on the DFS.
#[test]
fn node_failure_between_queries_does_not_change_answers() {
    let dfs = cluster(4);
    let (layout, gen) = load(&dfs, 0.005);
    let data = gen.gen_all();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();

    let q = query_by_id("Q2.1").unwrap();
    let expect = reference_answer(&data, &q).unwrap();
    assert_eq!(clyde.query(&q).unwrap().rows, expect);

    // A node dies (DFS replicas + its local dimension cache).
    dfs.kill_node(NodeId(2));
    clyde.engine().local_store().clear_node(NodeId(2));
    dfs.rereplicate().unwrap();

    let after = clyde.query(&q).unwrap();
    assert_eq!(after.rows, expect, "answer changed after node failure");

    // Restart the node empty; re-replication brings data back to it.
    dfs.restart_node(NodeId(2));
    dfs.rereplicate().unwrap();
    assert_eq!(clyde.query(&q).unwrap().rows, expect);
}

/// Every ablated feature combination still computes correct answers (the
/// ablation changes performance counters only).
#[test]
fn ablations_are_semantically_invisible() {
    let dfs = cluster(3);
    let (layout, gen) = load(&dfs, 0.004);
    let data = gen.gen_all();
    let q = query_by_id("Q3.4").unwrap();
    let expect = reference_answer(&data, &q).unwrap();
    for features in [
        Features::all_on(),
        Features::without_columnar(),
        Features::without_block_iteration(),
        Features::without_multithreading(),
    ] {
        let engine = Clydesdale::with_features(Arc::clone(&dfs), layout.clone(), features);
        assert_eq!(
            engine.query(&q).unwrap().rows,
            expect,
            "{} changed results",
            features.label()
        );
    }
}

/// Clydesdale's execution profile exhibits the paper's structural claims:
/// one map task per node, hash tables built once per node, fully local
/// scans, and one emitted record per group.
#[test]
fn execution_profile_matches_the_papers_design() {
    let dfs = cluster(4);
    let (layout, gen) = load(&dfs, 0.01);
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout);
    clyde.warm_dimension_cache().unwrap();
    let q = query_by_id("Q3.1").unwrap();
    let r = clyde.query(&q).unwrap();

    assert!(
        r.profile.map_tasks.len() <= 4,
        "more than one task per node"
    );
    assert_eq!(r.profile.map_concurrency, 1, "capacity scheduling violated");
    assert_eq!(r.locality, 1.0, "scan was not fully local");
    for t in &r.profile.map_tasks {
        assert!(t.cost.build_rows > 0, "a node skipped its build");
        // The tiny test cluster has 2 map slots per node; the task uses all.
        assert_eq!(t.cost.threads, 2, "task did not use all map slots");
    }
    // Emissions = per-task group counts, far below probed rows.
    let total = r.profile.total_map_cost();
    assert!(total.emit_records < total.probe_rows / 10);
    // Dimension cache was read locally (no DFS fallback needed after warm).
    let answer_groups = r.rows.len() as u64;
    assert!(total.emit_records >= answer_groups);
    let data = gen.gen_all();
    assert_eq!(
        r.rows,
        reference_answer(&data, &q).unwrap(),
        "profile checks must not distract from correctness"
    );
}

/// Multi-tenant reuse: the same DFS serves both engines' layouts at once,
/// and queries interleave without interference.
#[test]
fn interleaved_engines_share_the_cluster() {
    let dfs = cluster(3);
    let (layout, gen) = load(&dfs, 0.004);
    let data = gen.gen_all();
    let clyde = Clydesdale::new(Arc::clone(&dfs), layout.clone());
    let hive = Hive::new(Arc::clone(&dfs), layout, JoinStrategy::MapJoin);
    for id in ["Q1.2", "Q2.3"] {
        let q = query_by_id(id).unwrap();
        let expect = reference_answer(&data, &q).unwrap();
        let a = clyde.query(&q).unwrap();
        let b = hive.query(&q).unwrap();
        let c = clyde.query(&q).unwrap();
        assert_eq!(a.rows, expect);
        assert_eq!(b.rows, expect);
        assert_eq!(c.rows, expect);
    }
}
