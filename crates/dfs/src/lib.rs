//! A simulated HDFS for the Clydesdale reproduction.
//!
//! The paper's central storage constraint (Section 4.1) is that Clydesdale
//! keeps all data in a *replicated distributed filesystem* — it explicitly
//! refuses the HadoopDB route of local per-node databases. Reproducing the
//! system therefore requires an HDFS-shaped substrate with:
//!
//! * write-once files split into fixed-size **blocks**,
//! * each block **replicated** onto `r` distinct datanodes,
//! * a **pluggable block placement policy** (the HDFS 0.21 feature CIF
//!   depends on) so that all column files of a fact-table row group can be
//!   co-located on the same node set,
//! * **locality lookups** so the MapReduce scheduler can place map tasks next
//!   to their data, and
//! * per-node **I/O metrics** distinguishing local from remote reads, which
//!   feed the cost model that regenerates the paper's figures.
//!
//! Data lives in memory (`bytes::Bytes`), which is ample for the scale
//! factors we actually execute; the *performance* of the paper's 600 GB runs
//! is reproduced by the cost model in `clyde-mapred`, not by physical I/O.

pub mod block;
pub mod cache;
pub mod datanode;
pub mod dfs;
pub mod local;
pub mod metrics;
pub mod namenode;
pub mod placement;
pub mod testdfsio;
pub mod topology;

pub use block::{BlockId, BlockMeta};
pub use cache::{CacheCatalog, CacheEntry, CacheStats};
pub use dfs::{Dfs, DfsOptions, DfsWriter, FileStatus};
pub use local::NodeLocalStore;
pub use metrics::{IoMetrics, IoScope, IoSnapshot, ScanStats};
pub use placement::{BlockPlacementPolicy, ColocatingPlacement, DefaultPlacement};
pub use topology::{ClusterSpec, NodeId, NodeSpec};
