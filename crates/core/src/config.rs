//! Feature flags — the knobs behind the paper's Section 6.5 ablation.

/// Which of Clydesdale's techniques are enabled. Defaults to all on (the
/// system as shipped); the Figure 9 ablation turns them off one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Columnar scans: read only the query's columns from CIF. Off = read
    /// every fact column (the paper measured a 3.4x average slowdown).
    pub columnar: bool,
    /// Block iteration (B-CIF): probe over column arrays. Off = materialize
    /// one row at a time (paper: ~1.2x slowdown).
    pub block_iteration: bool,
    /// Multi-threaded map tasks with shared hash tables and one task per
    /// node. Off = single-threaded tasks, one per slot, each building its
    /// own copy of the dimension hash tables (paper: ~2.4x slowdown, up to
    /// 4.5x on flight 4).
    pub multithreading: bool,
    /// JVM reuse: share hash tables across consecutive tasks on a node.
    /// Meaningful only when `multithreading` is on; off forces rebuilds.
    pub jvm_reuse: bool,
    /// Vectorized probe kernel: selection vectors over column slices and
    /// dense group-id aggregation. Off = the scalar row-at-a-time probe
    /// loop over the same blocks. Results are identical either way.
    pub vectorized: bool,
    /// Zone-map block skipping: CIF row groups whose per-column min/max
    /// cannot satisfy the query's predicates are skipped without decoding.
    /// Results are identical either way.
    pub zone_skipping: bool,
}

impl Default for Features {
    fn default() -> Features {
        Features {
            columnar: true,
            block_iteration: true,
            multithreading: true,
            jvm_reuse: true,
            vectorized: true,
            zone_skipping: true,
        }
    }
}

impl Features {
    pub fn all_on() -> Features {
        Features::default()
    }

    pub fn without_columnar() -> Features {
        Features {
            columnar: false,
            ..Features::default()
        }
    }

    pub fn without_block_iteration() -> Features {
        Features {
            block_iteration: false,
            ..Features::default()
        }
    }

    pub fn without_multithreading() -> Features {
        Features {
            multithreading: false,
            jvm_reuse: false,
            ..Features::default()
        }
    }

    pub fn without_vectorized() -> Features {
        Features {
            vectorized: false,
            ..Features::default()
        }
    }

    pub fn without_zone_skipping() -> Features {
        Features {
            zone_skipping: false,
            ..Features::default()
        }
    }

    /// Human-readable label used by the ablation harness.
    pub fn label(&self) -> &'static str {
        match (
            self.columnar,
            self.block_iteration,
            self.multithreading,
            self.vectorized,
            self.zone_skipping,
        ) {
            (true, true, true, true, true) => "all-on",
            (false, true, true, true, true) => "no-columnar",
            (true, false, true, true, true) => "no-block-iteration",
            (true, true, false, true, true) => "no-multithreading",
            (true, true, true, false, true) => "no-vectorized",
            (true, true, true, true, false) => "no-zone-skipping",
            _ => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_on() {
        let f = Features::default();
        assert!(f.columnar && f.block_iteration && f.multithreading && f.jvm_reuse);
        assert!(f.vectorized && f.zone_skipping);
        assert_eq!(f.label(), "all-on");
    }

    #[test]
    fn ablation_constructors() {
        assert!(!Features::without_columnar().columnar);
        assert!(!Features::without_block_iteration().block_iteration);
        let mt = Features::without_multithreading();
        assert!(!mt.multithreading && !mt.jvm_reuse);
        assert_eq!(mt.label(), "no-multithreading");
        assert_eq!(Features::without_columnar().label(), "no-columnar");
        assert!(!Features::without_vectorized().vectorized);
        assert_eq!(Features::without_vectorized().label(), "no-vectorized");
        assert!(!Features::without_zone_skipping().zone_skipping);
        assert_eq!(
            Features::without_zone_skipping().label(),
            "no-zone-skipping"
        );
    }
}
