//! D008 `walltaint`: wall-clock values must not reach sim-time artifacts.
//!
//! Every CI byte-compare (shadow_check, fault matrix, trace goldens) rests
//! on the artifact surface being a pure function of the workload. Wall time
//! is the one legitimately nondeterministic input, quarantined behind
//! `WallTimer` (rule D002) and published only through channels the
//! comparators filter: `note_wall_phase` and metric series whose name
//! contains `wall` (shadow_check's `filter_wall` drops those lines).
//!
//! This rule closes the remaining gap with a per-function, statement-level
//! taint pass: a value is *tainted* if its statement mentions `WallTimer`,
//! an `elapsed_*` accessor, or a wall-named identifier; `let` bindings
//! propagate taint forward. A tainted statement that calls a sim-time sink
//! (metric emitters, span/trace export, profile serialization) is a
//! violation — unless the statement names a `wall`-marked series (a string
//! literal containing `wall`), the sanctioned filtered channel.

use super::FileCtx;
use crate::lexer::TokKind;
use crate::{Rule, Violation};
use std::collections::BTreeSet;

/// Sim-time artifact sinks: calls whose output CI byte-compares.
pub const D008_SINKS: &[&str] = &[
    "counter_add",
    "gauge_set",
    "histogram_record",
    "span",
    "record_job",
    "chrome_trace",
    "to_json",
    "profiles_json",
    "record_query_profile",
];

/// Accessor methods that read a wall timer.
const ELAPSED: [&str; 3] = ["elapsed_ns", "elapsed_s", "elapsed_ms"];

/// Sanitizers: wall-named identifiers that *remove* wall data rather than
/// carry it. `filter_wall` is the comparator-side scrub; `note_wall_phase`
/// is the sanctioned publish channel. A statement calling one is clean, not
/// a source.
const SANITIZERS: [&str; 2] = ["filter_wall", "note_wall_phase"];

/// Is this identifier a wall-clock source?
fn is_wall_ident(text: &str) -> bool {
    if SANITIZERS.contains(&text) {
        return false;
    }
    text == "WallTimer" || ELAPSED.contains(&text) || text.to_ascii_lowercase().contains("wall")
}

pub(crate) fn scan(ctx: &FileCtx<'_>, violations: &mut Vec<Violation>) {
    let ast = ctx.ast;
    for f in ast.fns.iter().filter(|f| !f.is_test && !f.nested) {
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        for stmt in ast.statements(&f.body) {
            let mut has_source = false;
            let mut wall_marked_literal = false;
            let mut sink: Option<(usize, String)> = None;
            for i in stmt.clone() {
                let t = &ast.sig[i];
                match t.kind {
                    TokKind::Ident => {
                        if is_wall_ident(&t.text) || tainted.contains(&t.text) {
                            has_source = true;
                        }
                        if ast.is_punct(i + 1, "(")
                            && D008_SINKS.contains(&t.text.as_str())
                            && sink.is_none()
                        {
                            sink = Some((i, t.text.clone()));
                        }
                    }
                    TokKind::Str if t.text.to_ascii_lowercase().contains("wall") => {
                        wall_marked_literal = true;
                    }
                    _ => {}
                }
            }
            if !has_source {
                continue;
            }
            // Propagate: `let name = <tainted expr>` taints the binding.
            let mut k = stmt.start;
            if ast.is_ident(k, "let") {
                k += 1;
                if ast.is_ident(k, "mut") {
                    k += 1;
                }
                if let Some(nt) = ast.sig.get(k) {
                    if nt.kind == TokKind::Ident && !crate::parse::is_keyword(&nt.text) {
                        tainted.insert(nt.text.clone());
                    }
                }
            }
            if let Some((at, name)) = sink {
                if !wall_marked_literal {
                    violations.push(Violation {
                        file: ctx.file.to_path_buf(),
                        line: ast.line(at),
                        rule: Rule::WallTaint,
                        message: format!(
                            "wall-derived value flows into sim-time sink `{name}` in fn \
                             `{}` — CI byte-compares this surface; route wall time through \
                             note_wall_phase or a `*wall*`-named (filtered) metric series",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}
