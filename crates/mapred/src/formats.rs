//! Framework-provided input formats: row-binary part files (the format the
//! engine writes for intermediate results, so multi-stage plans can chain
//! jobs) and in-memory inputs for tests and synthetic generators.

use crate::conf::JobConf;
use crate::input::{InputFormat, InputSplit, Reader, RecordReader, SplitSpec};
use crate::task::TaskIo;
use clyde_common::{rowcodec, ClydeError, Result, Row};
use clyde_dfs::Dfs;
use std::sync::Arc;

/// Reads directories of `part-*` files in the engine's row-binary format —
/// how Hive's stage N+1 consumes stage N's output.
pub struct RowBinInputFormat {
    dir: String,
}

impl RowBinInputFormat {
    pub fn new(dir: impl Into<String>) -> RowBinInputFormat {
        RowBinInputFormat { dir: dir.into() }
    }
}

impl InputFormat for RowBinInputFormat {
    fn splits(&self, dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
        let prefix = format!("{}/", self.dir.trim_end_matches('/'));
        let files = dfs.list(&prefix);
        if files.is_empty() {
            return Err(ClydeError::MapReduce(format!(
                "no input files under {prefix}"
            )));
        }
        files
            .into_iter()
            .enumerate()
            .map(|(index, path)| {
                let len = dfs.file_len(&path)?;
                let hosts = dfs.hosts(&path)?;
                Ok(InputSplit {
                    index,
                    spec: SplitSpec::FileRange {
                        path,
                        offset: 0,
                        len,
                    },
                    hosts,
                    bytes: len,
                })
            })
            .collect()
    }

    fn open(&self, split: &InputSplit, part: usize, io: &TaskIo) -> Result<Reader> {
        if part != 0 {
            return Err(ClydeError::MapReduce(
                "row-binary splits have one part".into(),
            ));
        }
        let SplitSpec::FileRange { path, .. } = &split.spec else {
            return Err(ClydeError::MapReduce("unexpected split spec".into()));
        };
        let data = io.read_file(path)?;
        let rows = rowcodec::read_rows(&data)?;
        Ok(Reader::Rows(Box::new(RowVecReader { rows, pos: 0 })))
    }
}

struct RowVecReader {
    rows: Vec<Row>,
    pos: usize,
}

impl RecordReader for RowVecReader {
    fn next(&mut self) -> Result<Option<(Row, Row)>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let row = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some((Row::empty(), row)))
    }
}

/// An in-memory input: `rows` divided into `num_splits` contiguous splits.
/// No locality (hosts empty), so the scheduler load-balances freely.
pub struct VecInputFormat {
    rows: Arc<Vec<Row>>,
    num_splits: usize,
}

impl VecInputFormat {
    pub fn new(rows: Vec<Row>, num_splits: usize) -> VecInputFormat {
        VecInputFormat {
            rows: Arc::new(rows),
            num_splits: num_splits.max(1),
        }
    }
}

impl InputFormat for VecInputFormat {
    fn splits(&self, _dfs: &Dfs, _conf: &JobConf) -> Result<Vec<InputSplit>> {
        let n = self.rows.len();
        let k = self.num_splits.min(n.max(1));
        let per = n.div_ceil(k);
        Ok((0..k)
            .map(|i| {
                let from = i * per;
                let to = ((i + 1) * per).min(n);
                InputSplit {
                    index: i,
                    spec: SplitSpec::Inline { from, to },
                    hosts: Vec::new(),
                    bytes: ((to - from) * 16) as u64,
                }
            })
            .collect())
    }

    fn open(&self, split: &InputSplit, part: usize, _io: &TaskIo) -> Result<Reader> {
        if part != 0 {
            return Err(ClydeError::MapReduce("inline splits have one part".into()));
        }
        let SplitSpec::Inline { from, to } = split.spec else {
            return Err(ClydeError::MapReduce("unexpected split spec".into()));
        };
        Ok(Reader::Rows(Box::new(InlineReader {
            rows: Arc::clone(&self.rows),
            pos: from,
            end: to,
        })))
    }
}

struct InlineReader {
    rows: Arc<Vec<Row>>,
    pos: usize,
    end: usize,
}

impl RecordReader for InlineReader {
    fn next(&mut self) -> Result<Option<(Row, Row)>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let row = self.rows[self.pos].clone();
        self.pos += 1;
        Ok(Some((Row::empty(), row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::job::{JobSpec, OutputSpec};
    use crate::runner::{FnMapper, RowMapRunner};
    use crate::shuffle::FnReducer;
    use clyde_common::row;
    use clyde_common::Datum;

    fn word_rows() -> Vec<Row> {
        ["the", "quick", "the", "fox", "fox", "the"]
            .iter()
            .map(|w| row![*w])
            .collect()
    }

    /// The canonical smoke test: word count through map, combine, reduce.
    #[test]
    fn word_count_end_to_end() {
        let dfs = Dfs::for_tests(3);
        let engine = Engine::new(Arc::clone(&dfs));
        let mapper = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            let word = v.at(0).clone();
            ctx.emit(&Row::new(vec![word]), row![1i64]);
            Ok(())
        }));
        // Combiner: partial sum, emitting only the running total (values must
        // stay shape-compatible with map output for algebraic combining).
        let partial_sum = FnReducer(|_key: &Row, values: &[Row], out: &mut Vec<Row>| {
            let total: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
            out.push(row![total]);
            Ok(())
        });
        let final_sum = FnReducer(|key: &Row, values: &[Row], out: &mut Vec<Row>| {
            let total: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
            out.push(key.concat(&row![total]));
            Ok(())
        });
        let mut spec = JobSpec::new(
            "wordcount",
            Arc::new(VecInputFormat::new(word_rows(), 3)),
            Arc::new(mapper),
        );
        spec.combiner = Some(Arc::new(partial_sum));
        spec.reducer = Some(Arc::new(final_sum));
        spec.num_reducers = 2;
        let result = engine.run_job(&spec).unwrap();
        let mut rows = result.rows;
        rows.sort();
        assert_eq!(
            rows,
            vec![row!["fox", 2i64], row!["quick", 1i64], row!["the", 3i64]]
        );
        assert_eq!(result.profile.map_tasks.len(), 3);
        assert_eq!(result.profile.reduce_tasks.len(), 2);
        assert!(result.cost.total_s() > 0.0);
    }

    #[test]
    fn word_count_without_combiner_matches() {
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let mapper = || {
            RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
                ctx.emit(&Row::new(vec![v.at(0).clone()]), row![1i64]);
                Ok(())
            }))
        };
        let partial = || {
            FnReducer(|_key: &Row, values: &[Row], out: &mut Vec<Row>| {
                let total: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
                out.push(row![total]);
                Ok(())
            })
        };
        let final_sum = || {
            FnReducer(|key: &Row, values: &[Row], out: &mut Vec<Row>| {
                let total: i64 = values.iter().map(|v| v.at(0).as_i64().unwrap()).sum();
                out.push(key.concat(&row![total]));
                Ok(())
            })
        };
        let mut with = JobSpec::new(
            "wc+c",
            Arc::new(VecInputFormat::new(word_rows(), 2)),
            Arc::new(mapper()),
        );
        with.combiner = Some(Arc::new(partial()));
        with.reducer = Some(Arc::new(final_sum()));
        with.num_reducers = 1;
        let mut without = JobSpec::new(
            "wc-c",
            Arc::new(VecInputFormat::new(word_rows(), 2)),
            Arc::new(mapper()),
        );
        without.reducer = Some(Arc::new(final_sum()));
        without.num_reducers = 1;
        let a = engine.run_job(&with).unwrap();
        let b = engine.run_job(&without).unwrap();
        assert_eq!(a.rows, b.rows);
        // The combiner shrinks the shuffle.
        assert!(a.profile.shuffle_bytes < b.profile.shuffle_bytes);
    }

    #[test]
    fn map_only_job_writes_part_files_readable_by_rowbin_format() {
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let identity = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&Row::empty(), v.clone());
            Ok(())
        }));
        let mut spec = JobSpec::new(
            "identity",
            Arc::new(VecInputFormat::new(word_rows(), 2)),
            Arc::new(identity),
        );
        spec.output = OutputSpec::DfsDir("/tmp/stage1".into());
        let result = engine.run_job(&spec).unwrap();
        assert_eq!(result.output_files.len(), 2);
        assert!(result.rows.is_empty());

        // Chain: read the part files back with RowBinInputFormat.
        let count = RowMapRunner::new(FnMapper(|_k: &Row, _v: &Row, ctx: &_| {
            ctx.emit(&row![0i64], row![1i64]);
            Ok(())
        }));
        let mut stage2 = JobSpec::new(
            "count",
            Arc::new(RowBinInputFormat::new("/tmp/stage1")),
            Arc::new(count),
        );
        stage2.reducer = Some(Arc::new(FnReducer(
            |_k: &Row, values: &[Row], out: &mut Vec<Row>| {
                out.push(row![values.len() as i64]);
                Ok(())
            },
        )));
        stage2.num_reducers = 1;
        let r2 = engine.run_job(&stage2).unwrap();
        assert_eq!(r2.rows, vec![row![6i64]]);
    }

    #[test]
    fn rowbin_format_errors_on_missing_dir() {
        let dfs = Dfs::for_tests(2);
        let fmt = RowBinInputFormat::new("/nope");
        assert!(fmt.splits(&dfs, &JobConf::new()).is_err());
    }

    #[test]
    fn map_only_memory_output_collects_key_and_value() {
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let m = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
            ctx.emit(&row![1i64], v.clone());
            Ok(())
        }));
        let spec = JobSpec::new(
            "kv",
            Arc::new(VecInputFormat::new(vec![row!["x"]], 1)),
            Arc::new(m),
        );
        let r = engine.run_job(&spec).unwrap();
        assert_eq!(r.rows, vec![row![1i64, "x"]]);
    }

    #[test]
    fn deterministic_across_runs() {
        let dfs = Dfs::for_tests(4);
        let engine = Engine::new(Arc::clone(&dfs));
        let make_spec = || {
            let m = RowMapRunner::new(FnMapper(|_k: &Row, v: &Row, ctx: &_| {
                ctx.emit(&Row::new(vec![v.at(0).clone()]), row![1i64]);
                Ok(())
            }));
            let mut s = JobSpec::new(
                "det",
                Arc::new(VecInputFormat::new(word_rows(), 4)),
                Arc::new(m),
            );
            s.reducer = Some(Arc::new(FnReducer(
                |key: &Row, values: &[Row], out: &mut Vec<Row>| {
                    out.push(key.concat(&Row::new(vec![Datum::I64(values.len() as i64)])));
                    Ok(())
                },
            )));
            s.num_reducers = 3;
            s
        };
        let a = engine.run_job(&make_spec()).unwrap();
        let b = engine.run_job(&make_spec()).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.cost.total_s(), b.cost.total_s());
    }

    #[test]
    fn mapper_error_fails_the_job() {
        let dfs = Dfs::for_tests(2);
        let engine = Engine::new(Arc::clone(&dfs));
        let failing = RowMapRunner::new(FnMapper(|_k: &Row, _v: &Row, _ctx: &_| {
            Err(ClydeError::MapReduce("injected failure".into()))
        }));
        let spec = JobSpec::new(
            "boom",
            Arc::new(VecInputFormat::new(word_rows(), 2)),
            Arc::new(failing),
        );
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.to_string().contains("injected failure"));
    }
}
